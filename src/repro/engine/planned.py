"""The planned backend: plan-based pattern matching behind the oracle API.

``PlannedEngine`` reuses the relational operators and the view-building
phase of :class:`~repro.pgq.evaluator.PGQEvaluator` unchanged and swaps
only the pattern matcher: graph views are matched by the planner's
:class:`~repro.planner.physical.PlanExecutor` (hash joins, pushed-down
filters, semi-naive repetition fixpoint, memoized compiled plans) instead
of the naive endpoint evaluator.

On top of the PR-1 pipeline the engine is **cost-based** and
**session-cached**:

* every materialized view's :class:`~repro.planner.stats.GraphStatistics`
  are collected once and drive the optimizer's join-ordering pass, so
  concatenation chains evaluate their most selective joins first;
* the compiled-plan memo defaults to a *per-engine* :class:`PlanCache`
  (costed plans are shaped by the engine's data; a process-wide cache
  would also let hot sessions evict each other's plans), keyed by the
  statistics fingerprint so equal patterns planned against different
  graphs never alias;
* the view cache inherited from :class:`PGQEvaluator` keeps one
  ``PlanExecutor`` alive per materialized graph, so its sub-plan tables
  and label partitions persist across a session's repeated queries.

Since PR 3 the engine's default executor is **columnar**: every view's
compact integer encoding (dense node/edge IDs, CSR adjacency, label
bitsets, property columns — :mod:`repro.graph.compact`) backs the
physical operators, with identifiers decoded only at output projection
and unbounded repetition closures optionally sharded onto a worker pool
(opt-in via ``fixpoint_shards``, gated to graphs past
``parallel_threshold`` nodes; serial propagation is the default).
``compact=False`` restores the boxed PR-2 operators.

Result sets are identical to the oracle on every query — that is checked
by the cross-engine equivalence tests — while repetition-heavy workloads
run an order of magnitude faster and repeated-query sessions skip the
view rebuild entirely (``benchmarks/bench_planner.py``).

Governance: the physical operators poll the active
:mod:`repro.governance` governor cooperatively — fixpoint rounds and the
closure kernel (``fixpoint.round``, including the sharded worker pool,
which the coordinator polls while strips drain), hash-join probe loops
(``join.probe``, which also meter ``max_intermediate``), and output
decode/mask expansion (``stream.decode``) — so deadlines, cross-thread
cancellation, and resource budgets abort a running query within
milliseconds instead of at operator boundaries.  With no budget, token,
or fault plan active, no governor is installed and the checkpoint guards
reduce to a ``None`` test (see ``governance_gate`` in the benchmarks).
"""

from __future__ import annotations

from typing import Optional

from repro.matching.endpoint import EvaluationCounters
from repro.pgq.evaluator import PGQEvaluator
from repro.planner.physical import PlanCache, PlanCounters, PlanExecutor
from repro.planner.stats import collect_graph_statistics
from repro.relational.database import Database


class _InstrumentedExecutor(PlanExecutor):
    """PlanExecutor that mirrors its counters into ``EvaluationStatistics``.

    The physical counters map onto the oracle's fields: produced rows ->
    triples, hash-join probes -> join (compatibility) checks, fixpoint
    rounds -> fixpoint rounds.  Filter-condition checks are folded into
    join checks (the planner checks conditions per surviving row).
    """

    def __init__(self, graph, *, pattern_counters: EvaluationCounters, **kwargs):
        super().__init__(graph, **kwargs)
        self._pattern_counters = pattern_counters

    def evaluate_output(self, output, bindings=None):
        counters = self.counters
        before = (counters.rows_produced, counters.join_probes, counters.fixpoint_rounds)
        result = super().evaluate_output(output, bindings=bindings)
        mirrored = self._pattern_counters
        mirrored.triples_produced += counters.rows_produced - before[0]
        mirrored.join_checks += counters.join_probes - before[1]
        mirrored.fixpoint_rounds += counters.fixpoint_rounds - before[2]
        return result


class PlannedEngine(PGQEvaluator):
    """Planner-backed evaluation: same semantics, physical operators.

    ``cost_based=False`` disables statistics collection and keeps the
    purely rule-based join order of PR 1; ``reuse_views=False`` (from the
    base class) additionally rebuilds views per evaluation.  Both exist
    for the benchmark baseline and for debugging plan differences.
    """

    name = "planned"

    def __init__(
        self,
        database: Database,
        *,
        collect_statistics: bool = False,
        max_repetitions: Optional[int] = None,
        plan_cache: Optional[PlanCache] = None,
        cost_based: bool = True,
        reuse_views: bool = True,
        compact: bool = True,
        fixpoint_shards: Optional[int] = None,
        parallel_threshold: Optional[int] = None,
        verify_plans: Optional[bool] = None,
    ):
        super().__init__(
            database,
            collect_statistics=collect_statistics,
            max_repetitions=max_repetitions,
            reuse_views=reuse_views,
        )
        private_cache = plan_cache is None
        self._private_plan_cache = private_cache
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.cost_based = cost_based
        self.plan_counters = PlanCounters()
        #: Columnar execution toggle (``False`` restores the PR-2 boxed
        #: path) and the sharded-fixpoint knobs, threaded to every
        #: executor this engine builds.
        self.compact = compact
        # Columnar sessions materialize views straight into the compact
        # encoding (base-class hook): the dense snapshot is built on the
        # cold view path and shared through the snapshot cache instead of
        # being encoded lazily at first execution.
        self.materialize_compact = compact
        self.fixpoint_shards = fixpoint_shards
        self.parallel_threshold = parallel_threshold
        #: Plan-invariant verification (``Database(verify_plans=True)`` /
        #: ``REPRO_VERIFY_PLANS=1``), threaded to every executor.
        self.verify_plans = verify_plans
        # Surface the execution counters through PlanCache.info() so a
        # session can observe shard/encode activity without the harness —
        # only on the engine's own private cache: a user-shared cache
        # serves several engines, and pinning one engine's counters there
        # would misreport the others' work.
        if private_cache:
            self.plan_cache.counters = self.plan_counters

    def use_snapshot_cache(self, scope) -> None:
        """Attach a snapshot-cache scope (see the base hook) and adopt the
        scope's *shared* plan cache.

        The shared cache is keyed on ``(snapshot fingerprint, engine
        kind)``, so every connection's planned engine over one snapshot
        compiles each (parameterized) plan shape once.  An explicitly
        user-supplied ``plan_cache`` is respected and kept; execution
        counters stay per-engine either way (a shared cache serves
        several engines, and pinning one engine's counters there would
        misreport the others' work — ``PlanCache.info()`` of a shared
        cache therefore reports plan statistics only).

        Counter-attribution caveat: the shared view entry carries ONE
        matcher, wired to the counters of the engine that built it cold.
        Sibling connections executing through that warm matcher therefore
        see their work tallied on the builder's ``plan_counters`` (their
        own ``Explain.counters`` stay at zero); per-connection
        observability comes from ``Explain.shared``/``streamed`` and the
        plan-cache statistics instead.
        """
        super().use_snapshot_cache(scope)
        if self._private_plan_cache:
            self.plan_cache = scope.plan_cache()

    def _executor_options(self, graph) -> dict:
        return dict(
            max_repetitions=self.max_repetitions,
            counters=self.plan_counters,
            plan_cache=self.plan_cache,
            graph_stats=collect_graph_statistics(graph) if self.cost_based else None,
            compact=self.compact,
            fixpoint_shards=self.fixpoint_shards,
            parallel_threshold=self.parallel_threshold,
            verify_plans=self.verify_plans,
        )

    def _make_matcher(self, graph) -> PlanExecutor:
        if self.statistics is not None:
            return _InstrumentedExecutor(
                graph,
                pattern_counters=self.statistics.pattern_counters,
                **self._executor_options(graph),
            )
        return PlanExecutor(graph, **self._executor_options(graph))

    def close(self) -> None:
        """Nothing to release; present for the Engine protocol."""


def make_planned_engine(
    database: Database,
    *,
    max_repetitions: Optional[int] = None,
    plan_cache: Optional[PlanCache] = None,
    cost_based: bool = True,
    reuse_views: bool = True,
    compact: bool = True,
    fixpoint_shards: Optional[int] = None,
    parallel_threshold: Optional[int] = None,
    verify_plans: Optional[bool] = None,
    **_options,
):
    return PlannedEngine(
        database,
        max_repetitions=max_repetitions,
        plan_cache=plan_cache,
        cost_based=cost_based,
        reuse_views=reuse_views,
        compact=compact,
        fixpoint_shards=fixpoint_shards,
        parallel_threshold=parallel_threshold,
        verify_plans=verify_plans,
    )
