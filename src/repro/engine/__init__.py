"""Execution engines: catalog API, backend registry, three backends.

The top-level surface is the :class:`~repro.engine.database.Database`
catalog — ``db.snapshot()`` captures immutable versions, ``db.connect()``
hands out :class:`~repro.engine.session.Connection` objects over them,
and every connection of one snapshot shares derived state through the
database's :class:`~repro.engine.database.SnapshotCache`.  The historical
:class:`PGQSession` remains as a deprecated single-connection shim.

The module registers the built-in backends (``naive``, ``planned``,
``sqlite``) with :mod:`repro.engine.registry` at import time; connections
select one by name via ``db.connect(engine=...)``.
"""

from repro.engine.database import Database, Snapshot, SnapshotCache, SnapshotScope
from repro.engine.naive import NaiveEngine, make_naive_engine
from repro.engine.planned import PlannedEngine, make_planned_engine
from repro.engine.registry import (
    Engine,
    LegacyEngineAdapter,
    available_engines,
    create_engine,
    engine_factory,
    register_engine,
    unregister_engine,
)
from repro.engine.session import (
    Connection,
    Explain,
    PGQSession,
    PreparedStatement,
    QueryResult,
)
from repro.engine.sqlite import SQLiteEngine, make_sqlite_engine

register_engine("naive", make_naive_engine, replace=True)
register_engine("planned", make_planned_engine, replace=True)
register_engine("sqlite", make_sqlite_engine, replace=True)

__all__ = [
    "Connection",
    "Database",
    "Engine",
    "Explain",
    "LegacyEngineAdapter",
    "NaiveEngine",
    "PGQSession",
    "PreparedStatement",
    "PlannedEngine",
    "QueryResult",
    "SQLiteEngine",
    "Snapshot",
    "SnapshotCache",
    "SnapshotScope",
    "available_engines",
    "create_engine",
    "engine_factory",
    "register_engine",
    "unregister_engine",
]
