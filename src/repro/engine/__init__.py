"""Execution engines: session facade, backend registry, three backends.

The module registers the built-in backends (``naive``, ``planned``,
``sqlite``) with :mod:`repro.engine.registry` at import time; a
:class:`PGQSession` selects one by name via ``PGQSession(engine=...)``.
"""

from repro.engine.naive import NaiveEngine, make_naive_engine
from repro.engine.planned import PlannedEngine, make_planned_engine
from repro.engine.registry import (
    Engine,
    LegacyEngineAdapter,
    available_engines,
    create_engine,
    engine_factory,
    register_engine,
    unregister_engine,
)
from repro.engine.session import Explain, PGQSession, PreparedStatement, QueryResult
from repro.engine.sqlite import SQLiteEngine, make_sqlite_engine

register_engine("naive", make_naive_engine, replace=True)
register_engine("planned", make_planned_engine, replace=True)
register_engine("sqlite", make_sqlite_engine, replace=True)

__all__ = [
    "Engine",
    "Explain",
    "LegacyEngineAdapter",
    "NaiveEngine",
    "PGQSession",
    "PreparedStatement",
    "PlannedEngine",
    "QueryResult",
    "SQLiteEngine",
    "available_engines",
    "create_engine",
    "engine_factory",
    "register_engine",
    "unregister_engine",
]
