"""Execution engines: in-memory session facade and SQLite backend."""

from repro.engine.session import PGQSession, QueryResult
from repro.engine.sqlite import SQLiteEngine

__all__ = ["PGQSession", "QueryResult", "SQLiteEngine"]
