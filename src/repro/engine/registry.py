"""The pluggable ``Engine`` protocol and the backend registry.

Every execution backend implements one small protocol — a ``name``, the
two-phase ``prepare(query) -> CompiledQuery`` / ``evaluate(query,
bindings=None)`` pair, and ``close()`` — and registers a factory under a
short name.  Sessions (and anything else that wants to run a PGQ query)
pick a backend by name:

>>> from repro.engine.registry import available_engines, create_engine
>>> sorted(available_engines())
['naive', 'planned', 'sqlite']
>>> engine = create_engine("planned", database)
>>> compiled = engine.prepare(query)          # parse/plan once ...
>>> compiled.execute({"minimum": 100})        # ... execute many times
>>> engine.evaluate(query)                    # one-shot convenience

Adding a backend is registration, not modification::

    from repro.engine.registry import register_engine

    def _make_my_engine(database, *, max_repetitions=None):
        return MyEngine(database, max_repetitions=max_repetitions)

    register_engine("mine", _make_my_engine)

Factories receive the database plus keyword options (currently
``max_repetitions``); they may ignore options that do not apply to them.
Engines that predate the two-phase API — implementing only the legacy
one-shot ``evaluate(query)`` — keep working: :func:`create_engine` wraps
them in :class:`LegacyEngineAdapter` (with a :class:`DeprecationWarning`),
which serves ``prepare`` by binding parameters eagerly per execution.

Two protocol surfaces are **optional**.  ``use_snapshot_cache(scope)``
lets an engine join the cross-connection shared materialization of
:mod:`repro.engine.database`: connections call it right after the
factory with a ``SnapshotScope`` keyed on the snapshot's content
fingerprint and the engine kind; engines without the hook simply keep
private caches.  ``stream(query, bindings=None)`` lets an engine serve
server-side cursors — returning ``(arity, row iterator)`` with the plan
executed eagerly and only the projection deferred — which
``CompiledQuery.execute_stream`` probes before falling back to the
materializing ``execute``.  The three built-in backends are registered
by :mod:`repro.engine`:

* ``naive`` — the formal evaluator, kept as the semantics oracle;
* ``planned`` — the query planner (logical IR, rule-based optimizer,
  hash joins, semi-naive repetition fixpoint);
* ``sqlite`` — compilation to SQL with recursive CTEs, falling back to
  the oracle for n-ary identifier views.
"""

from __future__ import annotations

import threading
import warnings
from typing import Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

from repro.errors import EngineError
from repro.parameters import Bindings
from repro.pgq.evaluator import CompiledQuery
from repro.pgq.queries import Query, resolve_bindings
from repro.relational.database import Database
from repro.relational.relation import Relation


@runtime_checkable
class Engine(Protocol):
    """Protocol every execution backend satisfies."""

    name: str

    def prepare(self, query: Query) -> CompiledQuery:
        """Compile a PGQ query once for repeated parameterized execution."""
        ...

    def evaluate(self, query: Query, bindings: Optional[Bindings] = None) -> Relation:
        """One-shot evaluation: prepare and execute with ``bindings``."""
        ...

    def close(self) -> None:
        """Release any resources held by the backend."""
        ...


class LegacyEngineAdapter:
    """Serves the two-phase API on top of an ``evaluate(query)``-only engine.

    Third-party backends written against the pre-prepared-statement
    protocol register and run unchanged: ``prepare`` returns a
    :class:`~repro.pgq.evaluator.CompiledQuery` whose every execution
    substitutes its bindings into the query eagerly and calls the wrapped
    engine's one-shot ``evaluate``.  Correct, but re-plans per binding —
    hence the :class:`DeprecationWarning` at construction time.
    """

    def __init__(self, engine):
        self._engine = engine
        self.name = getattr(engine, "name", type(engine).__name__)

    def prepare(self, query: Query) -> CompiledQuery:
        return CompiledQuery(self, query)

    def evaluate(self, query: Query, bindings: Optional[Bindings] = None) -> Relation:
        return self._engine.evaluate(resolve_bindings(query, bindings))

    def close(self) -> None:
        close = getattr(self._engine, "close", None)
        if close is not None:
            close()

    @property
    def wrapped(self):
        """The adapted legacy engine instance."""
        return self._engine

    def __getattr__(self, attribute):
        # Counters, caches and other backend-specific surface stay
        # reachable through the adapter.
        return getattr(self._engine, attribute)


#: A factory builds an engine bound to one database instance.
EngineFactory = Callable[..., Engine]

_REGISTRY: Dict[str, EngineFactory] = {}
_REGISTRY_LOCK = threading.Lock()


def register_engine(name: str, factory: EngineFactory, *, replace: bool = False) -> None:
    """Register an engine factory under ``name``.

    Re-registering an existing name requires ``replace=True`` so typos do
    not silently shadow a built-in backend.
    """
    with _REGISTRY_LOCK:
        if not replace and name in _REGISTRY:
            raise EngineError(f"engine {name!r} is already registered")
        _REGISTRY[name] = factory


def unregister_engine(name: str) -> None:
    """Remove a registered engine (tests of the registry itself)."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name, None)


def available_engines() -> Tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def engine_factory(name: str) -> EngineFactory:
    """Look up a factory; raises :class:`EngineError` naming alternatives."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r}; available engines: {', '.join(available_engines())}"
        ) from None


def create_engine(
    name: str,
    database: Database,
    *,
    max_repetitions: Optional[int] = None,
    **options,
) -> Engine:
    """Instantiate the backend ``name`` for one database instance.

    Engines without a ``prepare`` method (the legacy one-shot protocol)
    are wrapped in :class:`LegacyEngineAdapter` so sessions can use the
    prepared-statement API against them, with a deprecation warning.
    """
    factory = engine_factory(name)
    engine = factory(database, max_repetitions=max_repetitions, **options)
    if not hasattr(engine, "prepare"):
        warnings.warn(
            f"engine {name!r} implements only the legacy evaluate() protocol; "
            "it is served through LegacyEngineAdapter (parameters are bound "
            "eagerly per execution). Implement prepare(query) -> CompiledQuery "
            "to adopt the two-phase API.",
            DeprecationWarning,
            stacklevel=2,
        )
        engine = LegacyEngineAdapter(engine)
    return engine
