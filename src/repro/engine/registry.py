"""The pluggable ``Engine`` protocol and the backend registry.

Every execution backend implements one small protocol — a ``name``, an
``evaluate(query) -> Relation`` method, and ``close()`` — and registers a
factory under a short name.  Sessions (and anything else that wants to run
a PGQ query) pick a backend by name:

>>> from repro.engine.registry import available_engines, create_engine
>>> sorted(available_engines())
['naive', 'planned', 'sqlite']
>>> engine = create_engine("planned", database)
>>> engine.evaluate(query)

Adding a backend is registration, not modification::

    from repro.engine.registry import register_engine

    def _make_my_engine(database, *, max_repetitions=None):
        return MyEngine(database, max_repetitions=max_repetitions)

    register_engine("mine", _make_my_engine)

Factories receive the database plus keyword options (currently
``max_repetitions``); they may ignore options that do not apply to them.
The three built-in backends are registered by :mod:`repro.engine`:

* ``naive`` — the formal evaluator, kept as the semantics oracle;
* ``planned`` — the query planner (logical IR, rule-based optimizer,
  hash joins, semi-naive repetition fixpoint);
* ``sqlite`` — compilation to SQL with recursive CTEs, falling back to
  the oracle for n-ary identifier views.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

from repro.errors import EngineError
from repro.pgq.queries import Query
from repro.relational.database import Database
from repro.relational.relation import Relation


@runtime_checkable
class Engine(Protocol):
    """Protocol every execution backend satisfies."""

    name: str

    def evaluate(self, query: Query) -> Relation:
        """Evaluate a PGQ query and return its result relation."""
        ...

    def close(self) -> None:
        """Release any resources held by the backend."""
        ...


#: A factory builds an engine bound to one database instance.
EngineFactory = Callable[..., Engine]

_REGISTRY: Dict[str, EngineFactory] = {}


def register_engine(name: str, factory: EngineFactory, *, replace: bool = False) -> None:
    """Register an engine factory under ``name``.

    Re-registering an existing name requires ``replace=True`` so typos do
    not silently shadow a built-in backend.
    """
    if not replace and name in _REGISTRY:
        raise EngineError(f"engine {name!r} is already registered")
    _REGISTRY[name] = factory


def unregister_engine(name: str) -> None:
    """Remove a registered engine (tests of the registry itself)."""
    _REGISTRY.pop(name, None)


def available_engines() -> Tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def engine_factory(name: str) -> EngineFactory:
    """Look up a factory; raises :class:`EngineError` naming alternatives."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r}; available engines: {', '.join(available_engines())}"
        ) from None


def create_engine(
    name: str,
    database: Database,
    *,
    max_repetitions: Optional[int] = None,
    **options,
) -> Engine:
    """Instantiate the backend ``name`` for one database instance."""
    factory = engine_factory(name)
    return factory(database, max_repetitions=max_repetitions, **options)
