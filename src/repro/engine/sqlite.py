"""SQLite-backed execution engine.

SQL/PGQ is designed to run *inside* a relational engine; this module shows
the paper's formal fragments executing on a real one.  A
:class:`SQLiteEngine` loads a :class:`~repro.relational.database.Database`
into an in-memory SQLite database and evaluates PGQ queries by compiling
them to SQL:

* the relational operators map to ``SELECT`` / ``UNION`` / ``EXCEPT`` /
  cross joins;
* pattern matching over a graph view maps to joins over the six view
  relations, with unbounded repetition compiled to a ``WITH RECURSIVE``
  common table expression — the same mechanism (linear recursion) the paper
  cites as SQL's NL-complete core.

The SQL compilation supports unary identifiers (the read-only/read-write
fragments and the SQL/PGQ core, cf. Section 7 item (3)); queries that build
views with n-ary identifiers fall back to the in-memory evaluator so that
every query still executes.  Results are always identical to the formal
evaluator, which the test-suite and the E11 benchmark check.
"""

from __future__ import annotations

import itertools
import sqlite3
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.matching.endpoint import EndpointEvaluator
from repro.patterns.ast import (
    Concatenation,
    Disjunction,
    EdgePattern,
    Filter,
    NodePattern,
    OutputPattern,
    Pattern,
    PropertyRef,
    Repetition,
    iter_subpatterns,
)
from repro.patterns.conditions import (
    AndCondition,
    HasLabel,
    NotCondition,
    OrCondition,
    PatternCondition,
    PropertyCompare,
    PropertyComparesProperty,
    PropertyEquals,
)
from repro.pgq.evaluator import PGQEvaluator
from repro.pgq.queries import (
    ActiveDomainQuery,
    BaseRelation,
    Constant,
    ConstantRelation,
    Difference,
    EmptyRelation,
    GraphPattern,
    Product,
    Project,
    Query,
    Select,
    Union,
    iter_queries,
)
from repro.pgq.views import infer_identifier_arity
from repro.relational.conditions import (
    And as RAAnd,
    ColumnCompare,
    ColumnCompareConstant,
    ColumnEquals,
    ColumnEqualsConstant,
    Condition,
    Not as RANot,
    Or as RAOr,
    TrueCondition,
)
from repro.relational.database import Database
from repro.relational.relation import Relation


class SQLiteEngine:
    """Evaluates PGQ queries on SQLite, falling back to the formal evaluator.

    Registered in :mod:`repro.engine.registry` under the name ``sqlite``;
    with ``max_repetitions`` set, every query runs on the formal evaluator
    so the depth-overrun :class:`~repro.errors.PatternError` matches the
    other engines exactly.
    """

    name = "sqlite"

    def __init__(self, database: Database, *, max_repetitions: Optional[int] = None):
        self.database = database
        self.max_repetitions = max_repetitions
        self._connection: Optional[sqlite3.Connection] = None
        self._temp_counter = itertools.count()
        #: Temp tables created while compiling the current query; dropped
        #: by :meth:`evaluate` after the result is fetched so repeated
        #: queries in a long-lived session do not accumulate tables
        #: (``compile_to_sql`` callers keep them — the returned SQL
        #: references them).
        self._temp_tables_in_flight: List[str] = []

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    @property
    def connection(self) -> sqlite3.Connection:
        """The backing connection, created and loaded on first SQL use.

        Bounded sessions (``max_repetitions`` set) always delegate to the
        formal evaluator, so they never pay for loading the database.
        """
        if self._connection is None:
            self._connection = sqlite3.connect(":memory:")
            self._load(self.database)
        return self._connection

    def _load(self, database: Database) -> None:
        cursor = self._connection.cursor()
        for name in database:
            relation = database.relation(name)
            columns = ", ".join(f"c{i}" for i in range(1, relation.arity + 1))
            cursor.execute(f'CREATE TABLE "{name}" ({columns})')
            placeholders = ", ".join("?" for _ in range(relation.arity))
            cursor.executemany(
                f'INSERT INTO "{name}" VALUES ({placeholders})',
                [tuple(row) for row in relation.rows],
            )
        # Active domain as a real table: the union of all columns of all relations.
        cursor.execute("CREATE TABLE __adom (c1)")
        values = {value for value in database.active_domain()}
        cursor.executemany("INSERT INTO __adom VALUES (?)", [(v,) for v in values])
        self._connection.commit()

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "SQLiteEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def evaluate(self, query: Query) -> Relation:
        """Evaluate a PGQ query, preferring the SQL path when it applies.

        A configured ``max_repetitions`` bound is enforced by the formal
        evaluator (the SQL recursive CTE cannot raise on depth overrun),
        so queries that contain a repetition operator take the fallback
        path — keeping the error behavior identical across engines while
        repetition-free queries stay on SQL.
        """
        if self.max_repetitions is not None and _contains_repetition(query):
            fallback = PGQEvaluator(self.database, max_repetitions=self.max_repetitions)
            return fallback.evaluate(query)
        self._temp_tables_in_flight = []
        try:
            try:
                sql, arity = self._compile(query)
            except _SQLUnsupported:
                return PGQEvaluator(self.database).evaluate(query)
            rows = self.connection.execute(sql).fetchall()
        finally:
            self._drop_in_flight_temp_tables()
        return Relation(arity, [tuple(row) for row in rows]) if arity > 0 else Relation(
            0, [()] if rows else []
        )

    def _drop_in_flight_temp_tables(self) -> None:
        tables, self._temp_tables_in_flight = self._temp_tables_in_flight, []
        if not tables or self._connection is None:
            return
        cursor = self._connection.cursor()
        for table in tables:
            cursor.execute(f"DROP TABLE IF EXISTS {table}")
        self._connection.commit()

    def evaluate_sql(self, sql: str) -> List[Tuple]:
        """Run a raw SQL statement against the engine (for tests/examples)."""
        return [tuple(row) for row in self.connection.execute(sql).fetchall()]

    def compile_to_sql(self, query: Query) -> str:
        """Return the SQL text a query compiles to (raises when unsupported)."""
        sql, _arity = self._compile(query)
        return sql

    # ------------------------------------------------------------------ #
    # Relational operators
    # ------------------------------------------------------------------ #
    def _compile(self, query: Query) -> Tuple[str, int]:
        if isinstance(query, BaseRelation):
            relation = self.database.relation(query.name)
            columns = ", ".join(f"c{i}" for i in range(1, relation.arity + 1))
            return f'SELECT {columns} FROM "{query.name}"', relation.arity
        if isinstance(query, Constant):
            return f"SELECT {_sql_literal(query.value)} AS c1", 1
        if isinstance(query, ConstantRelation):
            if not query.rows:
                raise _SQLUnsupported("empty constant relation")
            selects = [
                "SELECT " + ", ".join(
                    f"{_sql_literal(value)} AS c{i + 1}" for i, value in enumerate(row)
                )
                for row in query.rows
            ]
            return " UNION ".join(selects), query.arity
        if isinstance(query, ActiveDomainQuery):
            return "SELECT c1 FROM __adom", 1
        if isinstance(query, EmptyRelation):
            columns = ", ".join(f"NULL AS c{i + 1}" for i in range(query.arity))
            return f"SELECT {columns} WHERE 1 = 0", query.arity
        if isinstance(query, Project):
            inner, _arity = self._compile(query.operand)
            columns = ", ".join(
                f"sub.c{position} AS c{index + 1}" for index, position in enumerate(query.positions)
            )
            return f"SELECT {columns} FROM ({inner}) AS sub", len(query.positions)
        if isinstance(query, Select):
            inner, arity = self._compile(query.operand)
            predicate = _compile_ra_condition(query.condition, "sub")
            columns = ", ".join(f"sub.c{i}" for i in range(1, arity + 1))
            return f"SELECT {columns} FROM ({inner}) AS sub WHERE {predicate}", arity
        if isinstance(query, Product):
            left_sql, left_arity = self._compile(query.left)
            right_sql, right_arity = self._compile(query.right)
            left_cols = ", ".join(f"l.c{i} AS c{i}" for i in range(1, left_arity + 1))
            right_cols = ", ".join(
                f"r.c{i} AS c{left_arity + i}" for i in range(1, right_arity + 1)
            )
            separator = ", " if left_cols and right_cols else ""
            return (
                f"SELECT {left_cols}{separator}{right_cols} FROM ({left_sql}) AS l, ({right_sql}) AS r",
                left_arity + right_arity,
            )
        if isinstance(query, Union):
            left_sql, left_arity = self._compile(query.left)
            right_sql, right_arity = self._compile(query.right)
            if left_arity != right_arity:
                raise EngineError("union of incompatible arities")
            return f"SELECT * FROM ({left_sql}) UNION SELECT * FROM ({right_sql})", left_arity
        if isinstance(query, Difference):
            left_sql, left_arity = self._compile(query.left)
            right_sql, _right = self._compile(query.right)
            return f"SELECT * FROM ({left_sql}) EXCEPT SELECT * FROM ({right_sql})", left_arity
        if isinstance(query, GraphPattern):
            return self._compile_graph_pattern(query)
        raise _SQLUnsupported(f"query node {type(query).__name__}")

    # ------------------------------------------------------------------ #
    # Pattern matching
    # ------------------------------------------------------------------ #
    #: Index columns per view-table position (nodes, .., properties): the
    #: pattern SQL joins sources/targets on the edge column and probes
    #: labels/properties by (element, key), so those lookups must not scan.
    _VIEW_INDEX_COLUMNS = ("c1", None, "c1", "c1", "c1, c2", "c1, c2")

    def _compile_graph_pattern(self, query: GraphPattern) -> Tuple[str, int]:
        # Materialize the six view relations as temporary tables; this keeps
        # the pattern SQL readable and lets the recursive CTE reference them.
        view_relations = tuple(
            PGQEvaluator(self.database).evaluate(source) for source in query.sources
        )
        identifier_arity = infer_identifier_arity(view_relations)
        if identifier_arity != 1:
            raise _SQLUnsupported("the SQL backend compiles unary-identifier views only")
        names = []
        cursor = self.connection.cursor()
        for index, relation in enumerate(view_relations):
            table = f"__view{next(self._temp_counter)}_{index}"
            names.append(table)
            self._temp_tables_in_flight.append(table)
            columns = ", ".join(f"c{i}" for i in range(1, max(relation.arity, 1) + 1))
            cursor.execute(f"DROP TABLE IF EXISTS {table}")
            cursor.execute(f"CREATE TEMP TABLE {table} ({columns})")
            if relation.arity:
                placeholders = ", ".join("?" for _ in range(relation.arity))
                cursor.executemany(
                    f"INSERT INTO {table} VALUES ({placeholders})",
                    [tuple(row) for row in relation.rows],
                )
            index_columns = self._VIEW_INDEX_COLUMNS[index]
            if index_columns is not None and relation.arity:
                cursor.execute(f"CREATE INDEX idx_{table} ON {table}({index_columns})")
        self.connection.commit()
        view = _ViewTables(*names)
        compiler = _PatternSQL(view, materialize=self._materialize_pair_table)
        sql = compiler.compile_output(query.output)
        arity = len(query.output.items)
        return sql, arity

    def _materialize_pair_table(self, pair_sql: str) -> str:
        """Materialize a repetition body's (src, tgt) relation, indexed.

        The recursive CTE previously re-evaluated the body subquery (label
        and property EXISTS probes included) on every extension step; as a
        temp table the per-step conditions run exactly once, and the
        ``src``/``tgt`` indexes turn each closure step into index lookups
        instead of scans — this is what removed the super-linear blowup on
        the transfer workloads.
        """
        table = f"__pairs{next(self._temp_counter)}"
        self._temp_tables_in_flight.append(table)
        cursor = self.connection.cursor()
        cursor.execute(f"DROP TABLE IF EXISTS {table}")
        cursor.execute(f"CREATE TEMP TABLE {table} AS {pair_sql}")
        cursor.execute(f"CREATE INDEX idx_{table}_src ON {table}(src)")
        cursor.execute(f"CREATE INDEX idx_{table}_tgt ON {table}(tgt)")
        self.connection.commit()
        return table


def _contains_repetition(query: Query) -> bool:
    """True when any pattern in the query has a repetition operator."""
    for node in iter_queries(query):
        if isinstance(node, GraphPattern):
            for sub in iter_subpatterns(node.output.pattern):
                if isinstance(sub, Repetition):
                    return True
    return False


def make_sqlite_engine(database: Database, *, max_repetitions: Optional[int] = None, **_options):
    return SQLiteEngine(database, max_repetitions=max_repetitions)


class _SQLUnsupported(Exception):
    """Internal: the query cannot be compiled to SQL; fall back to Python."""


def _sql_literal(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def _compile_ra_condition(condition: Condition, alias: str) -> str:
    if isinstance(condition, TrueCondition):
        return "1 = 1"
    if isinstance(condition, ColumnEquals):
        return f"{alias}.c{condition.left} = {alias}.c{condition.right}"
    if isinstance(condition, ColumnEqualsConstant):
        return f"{alias}.c{condition.position} = {_sql_literal(condition.constant)}"
    if isinstance(condition, ColumnCompare):
        operator = "<>" if condition.operator == "!=" else condition.operator
        return f"{alias}.c{condition.left} {operator} {alias}.c{condition.right}"
    if isinstance(condition, ColumnCompareConstant):
        operator = "<>" if condition.operator == "!=" else condition.operator
        return f"{alias}.c{condition.position} {operator} {_sql_literal(condition.constant)}"
    if isinstance(condition, RAAnd):
        return f"({_compile_ra_condition(condition.left, alias)} AND {_compile_ra_condition(condition.right, alias)})"
    if isinstance(condition, RAOr):
        return f"({_compile_ra_condition(condition.left, alias)} OR {_compile_ra_condition(condition.right, alias)})"
    if isinstance(condition, RANot):
        return f"NOT ({_compile_ra_condition(condition.operand, alias)})"
    raise _SQLUnsupported(f"selection condition {type(condition).__name__}")


class _ViewTables:
    """Names of the materialized view tables R1..R6."""

    def __init__(self, nodes, edges, sources, targets, labels, properties):
        self.nodes = nodes
        self.edges = edges
        self.sources = sources
        self.targets = targets
        self.labels = labels
        self.properties = properties


class _PatternSQL:
    """Compiles unary-identifier patterns to SQL over the view tables.

    Every pattern compiles to a SELECT with columns ``src``, ``tgt`` and one
    column ``v_<name>`` per free variable.
    """

    def __init__(self, view: _ViewTables, materialize=None):
        self.view = view
        self._alias_counter = itertools.count()
        #: Optional callback materializing a repetition body's pair
        #: relation into an indexed temp table (``sql -> table name``);
        #: without it the pair relation is inlined as a subquery.
        self._materialize = materialize

    def _alias(self) -> str:
        return f"p{next(self._alias_counter)}"

    # -- pattern cases ---------------------------------------------------
    def compile(self, pattern: Pattern) -> Tuple[str, Tuple[str, ...]]:
        if isinstance(pattern, NodePattern):
            variables = (pattern.variable,) if pattern.variable else ()
            binding = f", n.c1 AS v_{pattern.variable}" if pattern.variable else ""
            sql = f"SELECT n.c1 AS src, n.c1 AS tgt{binding} FROM {self.view.nodes} AS n"
            return sql, variables
        if isinstance(pattern, EdgePattern):
            variables = (pattern.variable,) if pattern.variable else ()
            binding = f", e.c1 AS v_{pattern.variable}" if pattern.variable else ""
            src_col, tgt_col = ("s.c2", "t.c2") if pattern.forward else ("t.c2", "s.c2")
            sql = (
                f"SELECT {src_col} AS src, {tgt_col} AS tgt{binding} "
                f"FROM {self.view.edges} AS e "
                f"JOIN {self.view.sources} AS s ON s.c1 = e.c1 "
                f"JOIN {self.view.targets} AS t ON t.c1 = e.c1"
            )
            return sql, variables
        if isinstance(pattern, Concatenation):
            return self._compile_concatenation(pattern)
        if isinstance(pattern, Disjunction):
            return self._compile_disjunction(pattern)
        if isinstance(pattern, Filter):
            return self._compile_filter(pattern)
        if isinstance(pattern, Repetition):
            return self._compile_repetition(pattern)
        raise _SQLUnsupported(f"pattern node {type(pattern).__name__}")

    def _compile_concatenation(self, pattern: Concatenation) -> Tuple[str, Tuple[str, ...]]:
        left_sql, left_vars = self.compile(pattern.left)
        right_sql, right_vars = self.compile(pattern.right)
        left_alias, right_alias = self._alias(), self._alias()
        shared = [v for v in right_vars if v in left_vars]
        conditions = [f"{left_alias}.tgt = {right_alias}.src"]
        conditions += [f"{left_alias}.v_{v} = {right_alias}.v_{v}" for v in shared]
        variables = tuple(left_vars) + tuple(v for v in right_vars if v not in left_vars)
        bindings = [f"{left_alias}.v_{v} AS v_{v}" for v in left_vars]
        bindings += [f"{right_alias}.v_{v} AS v_{v}" for v in right_vars if v not in left_vars]
        select_bindings = (", " + ", ".join(bindings)) if bindings else ""
        sql = (
            f"SELECT {left_alias}.src AS src, {right_alias}.tgt AS tgt{select_bindings} "
            f"FROM ({left_sql}) AS {left_alias} JOIN ({right_sql}) AS {right_alias} "
            f"ON {' AND '.join(conditions)}"
        )
        return sql, variables

    def _compile_disjunction(self, pattern: Disjunction) -> Tuple[str, Tuple[str, ...]]:
        left_sql, left_vars = self.compile(pattern.left)
        right_sql, right_vars = self.compile(pattern.right)
        variables = tuple(sorted(set(left_vars)))
        if set(left_vars) != set(right_vars):
            raise _SQLUnsupported("disjunction branches with different variables")
        order = ["src", "tgt"] + [f"v_{v}" for v in variables]
        columns = ", ".join(order)
        sql = (
            f"SELECT {columns} FROM ({left_sql}) UNION SELECT {columns} FROM ({right_sql})"
        )
        return sql, variables

    def _compile_filter(self, pattern: Filter) -> Tuple[str, Tuple[str, ...]]:
        body_sql, variables = self.compile(pattern.body)
        alias = self._alias()
        predicate = self._compile_condition(pattern.condition, alias, variables)
        columns = ", ".join(["src", "tgt"] + [f"v_{v}" for v in variables])
        sql = f"SELECT {columns} FROM ({body_sql}) AS {alias} WHERE {predicate}"
        return sql, variables

    def _compile_repetition(self, pattern: Repetition) -> Tuple[str, Tuple[str, ...]]:
        body_sql, _variables = self.compile(pattern.body)
        # The repetition erases bindings; only (src, tgt) pairs matter.
        # Materializing them (indexed on src/tgt) evaluates the body's
        # per-step label/property conditions exactly once — the CTE then
        # walks a plain indexed edge relation instead of re-deriving the
        # conditions from the pattern on every extension.
        pair_sql = f"SELECT DISTINCT src, tgt FROM ({body_sql})"
        if self._materialize is not None:
            pair_ref = self._materialize(pair_sql)
        else:
            pair_ref = f"({pair_sql})"
        if not pattern.is_unbounded:
            return self._bounded_repetition(pair_ref, pattern.lower, int(pattern.upper)), ()
        # psi^{lower..inf} = (exactly `lower` steps) composed with psi^*:
        # seeding the recursion with the exact-`lower` prefix keeps the
        # CTE's working set at (src, tgt) pairs closed by saturation — no
        # step counter, so a pair is derived once instead of once per
        # depth (the walk(src, tgt, steps) formulation was quadratic in
        # practice: every pair re-entered the queue at up to
        # lower + |N| depths).
        prefix = self._exact_prefix(pair_ref, pattern.lower)
        cte = (
            "WITH RECURSIVE reach(src, tgt) AS ("
            f" SELECT src, tgt FROM ({prefix})"
            f" UNION SELECT reach.src, pair.tgt"
            f" FROM reach JOIN {pair_ref} AS pair ON reach.tgt = pair.src"
            ") "
            "SELECT src AS src, tgt AS tgt FROM reach"
        )
        return cte, ()

    def _exact_prefix(self, pair_ref: str, lower: int) -> str:
        """SQL for the pairs reachable in exactly ``lower`` body steps."""
        if lower == 0:
            return f"SELECT n.c1 AS src, n.c1 AS tgt FROM {self.view.nodes} AS n"
        current = f"SELECT src, tgt FROM {pair_ref}"
        for _ in range(lower - 1):
            previous_alias, pair_alias = self._alias(), self._alias()
            current = (
                f"SELECT {previous_alias}.src AS src, {pair_alias}.tgt AS tgt "
                f"FROM ({current}) AS {previous_alias} "
                f"JOIN {pair_ref} AS {pair_alias} ON {previous_alias}.tgt = {pair_alias}.src"
            )
        return f"SELECT DISTINCT src, tgt FROM ({current})"

    def _bounded_repetition(self, pair_ref: str, lower: int, upper: int) -> str:
        selects = []
        if lower == 0:
            selects.append(f"SELECT n.c1 AS src, n.c1 AS tgt FROM {self.view.nodes} AS n")
        current = None
        for count in range(1, upper + 1):
            if current is None:
                current = f"SELECT src, tgt FROM {pair_ref}"
            else:
                previous_alias, pair_alias = self._alias(), self._alias()
                current = (
                    f"SELECT {previous_alias}.src AS src, {pair_alias}.tgt AS tgt "
                    f"FROM ({current}) AS {previous_alias} "
                    f"JOIN {pair_ref} AS {pair_alias} ON {previous_alias}.tgt = {pair_alias}.src"
                )
            if count >= max(lower, 1):
                selects.append(current)
        return " UNION ".join(f"SELECT DISTINCT src, tgt FROM ({part})" for part in selects)

    # -- conditions --------------------------------------------------------
    def _compile_condition(
        self, condition: PatternCondition, alias: str, variables: Tuple[str, ...]
    ) -> str:
        def var_column(name: str) -> str:
            if name not in variables:
                raise _SQLUnsupported(f"condition variable {name!r} is not bound")
            return f"{alias}.v_{name}"

        if isinstance(condition, HasLabel):
            return (
                f"EXISTS (SELECT 1 FROM {self.view.labels} AS lab "
                f"WHERE lab.c1 = {var_column(condition.var)} AND lab.c2 = {_sql_literal(condition.label)})"
            )
        if isinstance(condition, PropertyCompare):
            operator = "<>" if condition.operator == "!=" else condition.operator
            return (
                f"EXISTS (SELECT 1 FROM {self.view.properties} AS prop "
                f"WHERE prop.c1 = {var_column(condition.var)} AND prop.c2 = {_sql_literal(condition.key)} "
                f"AND prop.c3 {operator} {_sql_literal(condition.constant)})"
            )
        if isinstance(condition, PropertyEquals):
            return (
                f"EXISTS (SELECT 1 FROM {self.view.properties} AS p1, {self.view.properties} AS p2 "
                f"WHERE p1.c1 = {var_column(condition.left_var)} AND p1.c2 = {_sql_literal(condition.left_key)} "
                f"AND p2.c1 = {var_column(condition.right_var)} AND p2.c2 = {_sql_literal(condition.right_key)} "
                f"AND p1.c3 = p2.c3)"
            )
        if isinstance(condition, PropertyComparesProperty):
            operator = "<>" if condition.operator == "!=" else condition.operator
            return (
                f"EXISTS (SELECT 1 FROM {self.view.properties} AS p1, {self.view.properties} AS p2 "
                f"WHERE p1.c1 = {var_column(condition.left_var)} AND p1.c2 = {_sql_literal(condition.left_key)} "
                f"AND p2.c1 = {var_column(condition.right_var)} AND p2.c2 = {_sql_literal(condition.right_key)} "
                f"AND p1.c3 {operator} p2.c3)"
            )
        if isinstance(condition, AndCondition):
            left = self._compile_condition(condition.left, alias, variables)
            right = self._compile_condition(condition.right, alias, variables)
            return f"({left} AND {right})"
        if isinstance(condition, OrCondition):
            left = self._compile_condition(condition.left, alias, variables)
            right = self._compile_condition(condition.right, alias, variables)
            return f"({left} OR {right})"
        if isinstance(condition, NotCondition):
            return f"NOT ({self._compile_condition(condition.operand, alias, variables)})"
        raise _SQLUnsupported(f"pattern condition {type(condition).__name__}")

    # -- output patterns ----------------------------------------------------
    def compile_output(self, output: OutputPattern) -> str:
        output.validate()
        body_sql, variables = self.compile(output.pattern)
        alias = self._alias()
        items = []
        joins = []
        for index, item in enumerate(output.items):
            if isinstance(item, PropertyRef):
                prop_alias = f"out_prop{index}"
                joins.append(
                    f"JOIN {self.view.properties} AS {prop_alias} "
                    f"ON {prop_alias}.c1 = {alias}.v_{item.variable} "
                    f"AND {prop_alias}.c2 = {_sql_literal(item.key)}"
                )
                items.append(f"{prop_alias}.c3 AS c{index + 1}")
            else:
                items.append(f"{alias}.v_{item} AS c{index + 1}")
        select_items = ", ".join(items) if items else "1"
        join_sql = (" " + " ".join(joins)) if joins else ""
        return f"SELECT DISTINCT {select_items} FROM ({body_sql}) AS {alias}{join_sql}"
