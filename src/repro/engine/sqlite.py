"""SQLite-backed execution engine.

SQL/PGQ is designed to run *inside* a relational engine; this module shows
the paper's formal fragments executing on a real one.  A
:class:`SQLiteEngine` loads a :class:`~repro.relational.database.Database`
into an in-memory SQLite database and evaluates PGQ queries by compiling
them to SQL:

* the relational operators map to ``SELECT`` / ``UNION`` / ``EXCEPT`` /
  cross joins;
* pattern matching over a graph view maps to joins over the six view
  relations, with unbounded repetition compiled to a ``WITH RECURSIVE``
  common table expression — the same mechanism (linear recursion) the paper
  cites as SQL's NL-complete core.

The SQL compilation supports unary identifiers (the read-only/read-write
fragments and the SQL/PGQ core, cf. Section 7 item (3)); queries that build
views with n-ary identifiers fall back to the in-memory evaluator so that
every query still executes.  Results are always identical to the formal
evaluator, which the test-suite and the E11 benchmark check.
"""

from __future__ import annotations

import itertools
import re
import sqlite3
import time
import weakref
from collections import OrderedDict, deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.observability.tracing import trace_span

from repro.errors import BindingError, EngineError, GovernanceError, QueryCancelledError
from repro.governance import active_fault_plan, current_governor
from repro.parameters import Bindings, Parameter, check_bindings, merge_bindings
from repro.patterns.ast import (
    Concatenation,
    Disjunction,
    EdgePattern,
    Filter,
    NodePattern,
    OutputPattern,
    Pattern,
    PropertyRef,
    Repetition,
    iter_subpatterns,
)
from repro.patterns.conditions import (
    AndCondition,
    HasLabel,
    NotCondition,
    OrCondition,
    PatternCondition,
    PropertyCompare,
    PropertyComparesProperty,
    PropertyEquals,
)
from repro.pgq.evaluator import CompiledQuery, PGQEvaluator
from repro.pgq.queries import (
    ActiveDomainQuery,
    BaseRelation,
    Constant,
    ConstantRelation,
    Difference,
    EmptyRelation,
    GraphPattern,
    Product,
    Project,
    Query,
    Select,
    Union,
    iter_queries,
    query_parameters,
    resolve_bindings,
)
from repro.pgq.views import infer_identifier_arity
from repro.relational.conditions import (
    And as RAAnd,
    ColumnCompare,
    ColumnCompareConstant,
    ColumnEquals,
    ColumnEqualsConstant,
    Condition,
    Not as RANot,
    Or as RAOr,
    TrueCondition,
)
from repro.relational.database import Database
from repro.relational.relation import Relation


class SQLiteEngine:
    """Evaluates PGQ queries on SQLite, falling back to the formal evaluator.

    Registered in :mod:`repro.engine.registry` under the name ``sqlite``;
    with ``max_repetitions`` set, every query runs on the formal evaluator
    so the depth-overrun :class:`~repro.errors.PatternError` matches the
    other engines exactly.
    """

    name = "sqlite"

    def __init__(self, database: Database, *, max_repetitions: Optional[int] = None):
        self.database = database
        self.max_repetitions = max_repetitions
        self._connection: Optional[sqlite3.Connection] = None
        self._temp_counter = itertools.count()
        #: Temp tables created while compiling the current query; dropped
        #: by :meth:`evaluate` after the result is fetched so repeated
        #: queries in a long-lived session do not accumulate tables
        #: (``compile_to_sql`` callers keep them — the returned SQL
        #: references them; prepared statements keep theirs for their
        #: whole lifetime).
        self._temp_tables_in_flight: List[str] = []
        #: Literal sink of the in-flight compilation.  The default inlines
        #: SQL literals; a prepared compilation swaps in a
        #: :class:`_ParamSink` that turns :class:`Parameter` slots into
        #: native ``?`` placeholders and records their names in order.
        self._params: "_LiteralSink" = _LITERALS
        #: Collected ``(table, sql, slot names)`` steps of a prepared
        #: compilation whose pair tables depend on parameters and must be
        #: re-materialized per execution; ``None`` outside prepared
        #: compilations (a parameterized pair body is then unsupported).
        self._deferred_pairs: Optional[List[Tuple[str, str, Tuple[str, ...]]]] = None
        #: Engine-owned view temp tables shared by *prepared* statements,
        #: keyed like the evaluator's view cache on (sources, max_arity):
        #: the database is immutable for the engine's lifetime, so every
        #: prepared statement over the same graph view reuses one set of
        #: materialized tables instead of duplicating them per statement.
        #: Each entry carries a WeakSet of the compiled statements using
        #: it; superseded entries (e.g. graph redefinitions) are dropped
        #: once no live statement references them.  Cleared (with the
        #: connection) by :meth:`close`.
        self._shared_view_tables: "OrderedDict[Tuple, Tuple[List[str], weakref.WeakSet]]" = (
            OrderedDict()
        )
        #: The compiled statement currently being prepared, so shared view
        #: tables can track their users for safe eviction.
        self._preparing_statement: Optional["_SQLiteCompiledQuery"] = None
        #: Snapshot-cache scope attached by connections (see
        #: :meth:`use_snapshot_cache`); ``None`` = private evaluation.
        self._snapshot_scope = None
        #: Weak refs to live :class:`_CursorStream` results; detached
        #: (their remaining rows buffered) before the connection closes.
        self._open_streams: List["weakref.ref"] = []

    def use_snapshot_cache(self, scope) -> None:
        """Attach a snapshot-cache scope for cross-connection sharing.

        The SQLite backend's own state (the loaded ``:memory:`` database,
        temp tables) is connection-affine and stays private, but the
        *relational* work around it is shared: view-source relations are
        read through the scope's cross-engine CSE entries, and the
        oracle-fallback evaluator (n-ary identifier views, depth-bounded
        repetition) shares materialized graph views under a
        ``sqlite-fallback`` engine kind.
        """
        self._snapshot_scope = scope

    def _fallback_evaluator(self, *, max_repetitions: Optional[int] = None) -> PGQEvaluator:
        """A formal evaluator for queries the SQL path cannot serve,
        snapshot-cache-attached when the engine is."""
        evaluator = PGQEvaluator(self.database, max_repetitions=max_repetitions)
        scope = self._snapshot_scope
        if scope is not None:
            evaluator.use_snapshot_cache(
                scope.with_kind(("sqlite-fallback", max_repetitions))
            )
        return evaluator

    def _source_relation(self, source: Query) -> Relation:
        """Evaluate one view-source subquery, shared through the snapshot
        cache when possible (every backend computes identical relations
        for a concrete relational subquery)."""
        scope = self._snapshot_scope
        if scope is not None:
            entry = scope.relation(
                source, lambda: PGQEvaluator(self.database).evaluate(source)
            )
            if entry is not None:
                return entry[0]
        return PGQEvaluator(self.database).evaluate(source)

    #: Soft cap on cached shared view-table sets; entries beyond it are
    #: evicted oldest-first, but only once unreferenced (correctness wins
    #: over the cap when many definitions are live at once).
    _SHARED_VIEW_TABLES_MAX = 8

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    @property
    def connection(self) -> sqlite3.Connection:
        """The backing connection, created and loaded on first SQL use.

        Bounded sessions (``max_repetitions`` set) always delegate to the
        formal evaluator, so they never pay for loading the database.
        """
        if self._connection is None:
            connection = sqlite3.connect(":memory:")
            # Wait up to 5s for a competing writer before surfacing
            # "database is locked"; the transient-retry policy in
            # :meth:`_execute_with_retry` absorbs what the busy handler
            # does not.  WAL journaling — the usual companion setting —
            # does not apply to ``:memory:`` databases (no file to
            # journal); a future file-backed mode should enable
            # ``PRAGMA journal_mode=WAL`` alongside this timeout.
            connection.execute("PRAGMA busy_timeout = 5000")
            self._connection = connection
            self._load(self.database)
        return self._connection

    def _load(self, database: Database) -> None:
        cursor = self._connection.cursor()
        for name in database:
            relation = database.relation(name)
            columns = ", ".join(f"c{i}" for i in range(1, relation.arity + 1))
            cursor.execute(f'CREATE TABLE "{name}" ({columns})')
            placeholders = ", ".join("?" for _ in range(relation.arity))
            cursor.executemany(
                f'INSERT INTO "{name}" VALUES ({placeholders})',
                [tuple(row) for row in relation.rows],
            )
        # Active domain as a real table: the union of all columns of all relations.
        cursor.execute("CREATE TABLE __adom (c1)")
        values = {value for value in database.active_domain()}
        cursor.executemany("INSERT INTO __adom VALUES (?)", [(v,) for v in values])
        self._connection.commit()

    def close(self) -> None:
        # Streams still reading the connection buffer their remaining
        # rows first, so their results stay readable after the close.
        self._detach_open_streams()
        if self._connection is not None:
            self._connection.close()
            self._connection = None
        # Temp tables died with the connection; prepared statements that
        # survive a close recompile (and re-share) on the next execution.
        self._shared_view_tables.clear()

    def __enter__(self) -> "SQLiteEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def evaluate(self, query: Query, bindings: Optional[Bindings] = None) -> Relation:
        """Evaluate a PGQ query, preferring the SQL path when it applies.

        ``bindings`` are substituted eagerly (one-shot evaluation gains
        nothing from deferred binding; :meth:`prepare` is the path that
        keeps ``?`` placeholders native).  A configured ``max_repetitions``
        bound is enforced by the formal evaluator (the SQL recursive CTE
        cannot raise on depth overrun), so queries that contain a
        repetition operator take the fallback path — keeping the error
        behavior identical across engines while repetition-free queries
        stay on SQL.
        """
        query = resolve_bindings(query, bindings)
        if self.max_repetitions is not None and _contains_repetition(query):
            return self._fallback_evaluator(
                max_repetitions=self.max_repetitions
            ).evaluate(query)
        self._temp_tables_in_flight = []
        try:
            try:
                sql, arity = self._compile(query)
            except _SQLUnsupported:
                return self._fallback_evaluator().evaluate(query)
            # Iterate the cursor rather than fetchall(): rows decode one at
            # a time into the relation (the temp tables must outlive the
            # iteration, hence the consumption inside this try block).
            with trace_span("sqlite.execute", sql=_sql_snippet(sql)), self._governed_execution():
                relation = _relation_from_rows(
                    self._execute_with_retry(self.connection, sql), arity
                )
        finally:
            self._drop_in_flight_temp_tables()
        return relation

    def stream(
        self, query: Query, bindings: Optional[Bindings] = None
    ) -> Optional[Tuple[int, Iterator[Tuple]]]:
        """One-shot streaming evaluation: ``(arity, row iterator)`` or None.

        The SQL compiles and the statement starts executing here (compile
        errors and missing bindings surface at call time), but rows are
        fetched from the SQLite cursor incrementally as the iterator is
        consumed; in-flight temp tables are dropped when the iterator is
        exhausted or closed.  Returns ``None`` — the caller then takes the
        materializing :meth:`evaluate` path — for queries the SQL
        translation cannot serve, for depth-bounded sessions whose queries
        contain repetition (the formal evaluator enforces the bound), and
        for zero-arity results (the ``{()}`` vs ``{}`` distinction is not
        a row stream).
        """
        query = resolve_bindings(query, bindings)
        if self.max_repetitions is not None and _contains_repetition(query):
            return None
        self._temp_tables_in_flight = []
        try:
            sql, arity = self._compile(query)
        except _SQLUnsupported:
            self._drop_in_flight_temp_tables()
            return None
        except BaseException:
            self._drop_in_flight_temp_tables()
            raise
        if arity == 0:
            self._drop_in_flight_temp_tables()
            return None
        tables, self._temp_tables_in_flight = self._temp_tables_in_flight, []
        try:
            with trace_span("sqlite.execute", sql=_sql_snippet(sql)), self._governed_execution():
                cursor = self._execute_with_retry(self.connection, sql)
        except BaseException:
            self._drop_tables(tables)
            raise
        return arity, self._stream_cursor(cursor, tables)

    def _stream_cursor(
        self, cursor: sqlite3.Cursor, tables: List[str]
    ) -> "_CursorStream":
        """A distinct-row stream over ``cursor``, registered with the
        engine so :meth:`close` can detach (buffer) it first."""
        stream = _CursorStream(self, cursor, tables)
        self._open_streams.append(weakref.ref(stream))
        if len(self._open_streams) > 64:  # prune collected streams
            self._open_streams = [
                ref for ref in self._open_streams if ref() is not None
            ]
        return stream

    def _detach_open_streams(self) -> None:
        """Buffer every live stream's remaining rows (connection closing)."""
        streams, self._open_streams = self._open_streams, []
        for ref in streams:
            stream = ref()
            if stream is not None:
                stream.detach()

    def prepare(self, query: Query) -> CompiledQuery:
        """Compile once to SQL with native ``?`` parameters, execute many.

        The six view relations are materialized (and indexed) into temp
        tables that persist for the prepared statement's lifetime; each
        parameter slot becomes a SQLite ``?`` placeholder bound per
        execution.  Pair tables of repetition bodies whose conditions
        carry parameters are re-materialized per execution (their contents
        depend on the binding); everything else is compiled exactly once.
        Queries the SQL path cannot serve (n-ary identifier views, a
        ``max_repetitions`` bound with repetition, parameterized view
        sources) fall back to a per-execution eager-binding compiled
        query, matching :meth:`evaluate` semantics.
        """
        if self.max_repetitions is not None and _contains_repetition(query):
            return CompiledQuery(self, query)
        try:
            return _SQLiteCompiledQuery(self, query)
        except (_SQLUnsupported, BindingError):
            return CompiledQuery(self, query)

    def _drop_in_flight_temp_tables(self) -> None:
        tables, self._temp_tables_in_flight = self._temp_tables_in_flight, []
        self._drop_tables(tables)

    def _drop_tables(self, tables: Sequence[str]) -> None:
        if not tables or self._connection is None:
            return
        cursor = self._connection.cursor()
        for table in tables:
            try:
                cursor.execute(f"DROP TABLE IF EXISTS {table}")
            except sqlite3.OperationalError:
                # A streaming cursor is still reading the table; leave it
                # behind — temp tables die with the connection anyway.
                pass
        self._connection.commit()

    #: SQLite virtual-machine instructions between progress-handler polls
    #: while a governed statement runs — low enough that a 50ms deadline
    #: is observed within a few milliseconds on the transfer workloads,
    #: high enough that the handler is invisible on ungoverned-scale work.
    _PROGRESS_INTERVAL = 1000

    #: Retry policy for transient ``database is locked`` errors (another
    #: handle held the write lock longer than the busy handler waited):
    #: exponential backoff starting at 5ms, then give up with the error.
    _TRANSIENT_RETRIES = 3
    _TRANSIENT_BACKOFF_S = 0.005

    @contextmanager
    def _governed_execution(self):
        """Cooperative governance for one SQL execution window.

        When a governor is active, its checkpoint becomes the
        connection's progress handler (site ``"sqlite.progress"``, polled
        every ``_PROGRESS_INTERVAL`` VM instructions) and
        ``connection.interrupt`` is registered on the cancellation token,
        so deadlines, budgets, injected faults and cross-thread cancels
        all stop the statement mid-flight.  SQLite surfaces either stop
        as ``OperationalError: interrupted``, which this context maps
        back to the governance error that tripped.  Ungoverned
        executions install nothing — the disabled path stays free.
        """
        governor = current_governor()
        if governor is None:
            yield
            return
        connection = self.connection
        tripped: List[GovernanceError] = []

        def _poll() -> int:
            try:
                governor.checkpoint("sqlite.progress")
            except GovernanceError as error:
                tripped.append(error)
                return 1  # abort -> OperationalError("interrupted")
            return 0

        token = governor.token
        connection.set_progress_handler(_poll, self._PROGRESS_INTERVAL)
        token.add_callback(connection.interrupt)
        try:
            yield
        except sqlite3.OperationalError as error:
            if tripped:
                raise tripped[0] from error
            if "interrupt" in str(error):
                # interrupt() landed between two progress polls (a
                # cross-thread cancel racing the handler).
                reason = token.reason or "cancelled"
                raise QueryCancelledError(
                    f"query cancelled during SQLite execution: {reason}",
                    reason=reason,
                    progress=governor.progress(),
                ) from error
            raise
        finally:
            token.remove_callback(connection.interrupt)
            connection.set_progress_handler(None, 0)

    def _execute_with_retry(self, connection: sqlite3.Connection, sql: str, arguments: Tuple = ()):
        """Run one statement, absorbing transient ``database is locked``.

        ``:memory:`` databases rarely lock in practice, but the fault
        plan injects lock errors (``REPRO_FAULTS="transient=N"``) to
        prove the retry path, and a future file-backed mode inherits a
        working policy.  Non-transient OperationalErrors — including the
        ``interrupted`` raised by governance — propagate immediately.
        """
        delay = self._TRANSIENT_BACKOFF_S
        attempts = 0
        while True:
            faults = active_fault_plan()
            try:
                if faults is not None and faults.take_transient():
                    raise sqlite3.OperationalError("database is locked (injected)")
                return connection.execute(sql, arguments)
            except sqlite3.OperationalError as error:
                if "locked" not in str(error):
                    raise
                if attempts >= self._TRANSIENT_RETRIES:
                    raise EngineError(
                        f"transient SQLite error persisted after "
                        f"{attempts} retries: {error}"
                    ) from error
                attempts += 1
                time.sleep(delay)
                delay *= 2

    def evaluate_sql(self, sql: str) -> List[Tuple]:
        """Run a raw SQL statement against the engine (for tests/examples)."""
        return [tuple(row) for row in self.connection.execute(sql).fetchall()]

    def compile_to_sql(self, query: Query) -> str:
        """Return the SQL text a query compiles to (raises when unsupported)."""
        sql, _arity = self._compile(query)
        return sql

    # ------------------------------------------------------------------ #
    # Relational operators
    # ------------------------------------------------------------------ #
    def _compile(self, query: Query) -> Tuple[str, int]:
        if isinstance(query, BaseRelation):
            relation = self.database.relation(query.name)
            columns = ", ".join(f"c{i}" for i in range(1, relation.arity + 1))
            return f'SELECT {columns} FROM "{query.name}"', relation.arity
        if isinstance(query, Constant):
            return f"SELECT {self._params.emit(query.value)} AS c1", 1
        if isinstance(query, ConstantRelation):
            if not query.rows:
                raise _SQLUnsupported("empty constant relation")
            selects = [
                "SELECT " + ", ".join(
                    f"{_sql_literal(value)} AS c{i + 1}" for i, value in enumerate(row)
                )
                for row in query.rows
            ]
            return " UNION ".join(selects), query.arity
        if isinstance(query, ActiveDomainQuery):
            return "SELECT c1 FROM __adom", 1
        if isinstance(query, EmptyRelation):
            columns = ", ".join(f"NULL AS c{i + 1}" for i in range(query.arity))
            return f"SELECT {columns} WHERE 1 = 0", query.arity
        if isinstance(query, Project):
            inner, _arity = self._compile(query.operand)
            columns = ", ".join(
                f"sub.c{position} AS c{index + 1}" for index, position in enumerate(query.positions)
            )
            return f"SELECT {columns} FROM ({inner}) AS sub", len(query.positions)
        if isinstance(query, Select):
            inner, arity = self._compile(query.operand)
            predicate = _compile_ra_condition(query.condition, "sub", self._params.emit)
            columns = ", ".join(f"sub.c{i}" for i in range(1, arity + 1))
            return f"SELECT {columns} FROM ({inner}) AS sub WHERE {predicate}", arity
        if isinstance(query, Product):
            left_sql, left_arity = self._compile(query.left)
            right_sql, right_arity = self._compile(query.right)
            left_cols = ", ".join(f"l.c{i} AS c{i}" for i in range(1, left_arity + 1))
            right_cols = ", ".join(
                f"r.c{i} AS c{left_arity + i}" for i in range(1, right_arity + 1)
            )
            separator = ", " if left_cols and right_cols else ""
            return (
                f"SELECT {left_cols}{separator}{right_cols} FROM ({left_sql}) AS l, ({right_sql}) AS r",
                left_arity + right_arity,
            )
        if isinstance(query, Union):
            left_sql, left_arity = self._compile(query.left)
            right_sql, right_arity = self._compile(query.right)
            if left_arity != right_arity:
                raise EngineError("union of incompatible arities")
            return f"SELECT * FROM ({left_sql}) UNION SELECT * FROM ({right_sql})", left_arity
        if isinstance(query, Difference):
            left_sql, left_arity = self._compile(query.left)
            right_sql, _right = self._compile(query.right)
            return f"SELECT * FROM ({left_sql}) EXCEPT SELECT * FROM ({right_sql})", left_arity
        if isinstance(query, GraphPattern):
            return self._compile_graph_pattern(query)
        raise _SQLUnsupported(f"query node {type(query).__name__}")

    # ------------------------------------------------------------------ #
    # Pattern matching
    # ------------------------------------------------------------------ #
    #: Index columns per view-table position (nodes, .., properties): the
    #: pattern SQL joins sources/targets on the edge column and probes
    #: labels/properties by (element, key), so those lookups must not scan.
    _VIEW_INDEX_COLUMNS = ("c1", None, "c1", "c1", "c1, c2", "c1, c2")

    def _compile_graph_pattern(self, query: GraphPattern) -> Tuple[str, int]:
        names = self._materialize_view_tables(query)
        view = _ViewTables(*names)
        compiler = _PatternSQL(
            view, materialize=self._materialize_pair_table, params=self._params
        )
        sql = compiler.compile_output(query.output)
        arity = len(query.output.items)
        return sql, arity

    def _materialize_view_tables(self, query: GraphPattern) -> List[str]:
        """Materialize the six view relations as temporary tables.

        Keeps the pattern SQL readable and lets the recursive CTE reference
        them.  During a *prepared* compilation the tables are shared
        engine-wide per ``(sources, max_arity)`` — the database is
        immutable for the engine's lifetime, so many prepared statements
        over one graph view hold one set of tables, not one per statement.
        One-shot evaluations keep private tables (they are dropped right
        after the query).
        """
        preparing = self._deferred_pairs is not None
        cache_key: Optional[Tuple] = None
        if preparing:
            cache_key = (query.sources, query.max_arity)
            try:
                hash(cache_key)
            except TypeError:
                cache_key = None
            else:
                shared = self._shared_view_tables.get(cache_key)
                if shared is not None:
                    names, users = shared
                    self._shared_view_tables.move_to_end(cache_key)
                    if self._preparing_statement is not None:
                        users.add(self._preparing_statement)
                    return names
        view_relations = tuple(self._source_relation(source) for source in query.sources)
        identifier_arity = infer_identifier_arity(view_relations)
        if identifier_arity != 1:
            raise _SQLUnsupported("the SQL backend compiles unary-identifier views only")
        names: List[str] = []
        cursor = self.connection.cursor()
        # Register every table in-flight *before* creating it so a
        # mid-loop failure (e.g. an unbindable cell value) still gets its
        # partial tables dropped by the caller's cleanup; on success the
        # shared-cache path below adopts them out of the in-flight list.
        in_flight_start = len(self._temp_tables_in_flight)
        for index, relation in enumerate(view_relations):
            table = f"__view{next(self._temp_counter)}_{index}"
            names.append(table)
            self._temp_tables_in_flight.append(table)
            columns = ", ".join(f"c{i}" for i in range(1, max(relation.arity, 1) + 1))
            cursor.execute(f"DROP TABLE IF EXISTS {table}")
            cursor.execute(f"CREATE TEMP TABLE {table} ({columns})")
            if relation.arity:
                placeholders = ", ".join("?" for _ in range(relation.arity))
                cursor.executemany(
                    f"INSERT INTO {table} VALUES ({placeholders})",
                    [tuple(row) for row in relation.rows],
                )
            index_columns = self._VIEW_INDEX_COLUMNS[index]
            if index_columns is not None and relation.arity:
                cursor.execute(f"CREATE INDEX idx_{table} ON {table}({index_columns})")
        self.connection.commit()
        if cache_key is not None:
            # Engine-owned from here on: statements must not drop them.
            del self._temp_tables_in_flight[in_flight_start:]
            users: "weakref.WeakSet" = weakref.WeakSet()
            if self._preparing_statement is not None:
                users.add(self._preparing_statement)
            self._shared_view_tables[cache_key] = (names, users)
            self._evict_unreferenced_view_tables()
        return names

    def _evict_unreferenced_view_tables(self) -> None:
        """Drop cached view-table sets past the cap, oldest first, but
        only those no live prepared statement still compiles against
        (superseded graph definitions, typically)."""
        if len(self._shared_view_tables) <= self._SHARED_VIEW_TABLES_MAX:
            return
        for key in list(self._shared_view_tables):
            if len(self._shared_view_tables) <= self._SHARED_VIEW_TABLES_MAX:
                break
            names, users = self._shared_view_tables[key]
            if not users:
                del self._shared_view_tables[key]
                self._drop_tables(names)

    def _materialize_pair_table(self, pair_sql: str, slots: Tuple[str, ...] = ()) -> str:
        """Materialize a repetition body's (src, tgt) relation, indexed.

        The recursive CTE previously re-evaluated the body subquery (label
        and property EXISTS probes included) on every extension step; as a
        temp table the per-step conditions run exactly once, and the
        ``src``/``tgt`` indexes turn each closure step into index lookups
        instead of scans — this is what removed the super-linear blowup on
        the transfer workloads.

        ``slots`` names the parameter placeholders inside ``pair_sql`` (in
        ``?`` order).  A parameterized pair table's contents depend on the
        execution's bindings, so during a prepared compilation it is only
        *recorded* here (``_deferred_pairs``) and materialized per
        execution by :class:`_SQLiteCompiledQuery`.
        """
        table = f"__pairs{next(self._temp_counter)}"
        self._temp_tables_in_flight.append(table)
        # A pair table must also be deferred when its body *references* an
        # already-deferred table (nested repetition with a parameterized
        # inner body): that inner table does not exist until execution, so
        # materializing the outer one now would fail.  Match whole
        # identifiers — a plain substring test would alias __pairs1 onto
        # __pairs12 and needlessly defer parameter-free tables.
        references_deferred = self._deferred_pairs is not None and any(
            re.search(rf"\b{re.escape(deferred_table)}\b", pair_sql)
            for deferred_table, _sql, _slots in self._deferred_pairs
        )
        if slots or references_deferred:
            if self._deferred_pairs is None:
                raise _SQLUnsupported("parameterized repetition body outside prepare()")
            self._deferred_pairs.append((table, pair_sql, tuple(slots)))
            return table
        cursor = self.connection.cursor()
        cursor.execute(f"DROP TABLE IF EXISTS {table}")
        cursor.execute(f"CREATE TEMP TABLE {table} AS {pair_sql}")
        cursor.execute(f"CREATE INDEX idx_{table}_src ON {table}(src)")
        cursor.execute(f"CREATE INDEX idx_{table}_tgt ON {table}(tgt)")
        self.connection.commit()
        return table


def _contains_repetition(query: Query) -> bool:
    """True when any pattern in the query has a repetition operator."""
    for node in iter_queries(query):
        if isinstance(node, GraphPattern):
            for sub in iter_subpatterns(node.output.pattern):
                if isinstance(sub, Repetition):
                    return True
    return False


def make_sqlite_engine(database: Database, *, max_repetitions: Optional[int] = None, **_options):
    return SQLiteEngine(database, max_repetitions=max_repetitions)


class _SQLUnsupported(Exception):
    """Internal: the query cannot be compiled to SQL; fall back to Python."""


def _sql_literal(value) -> str:
    if isinstance(value, Parameter):
        raise _SQLUnsupported(f"parameter slot {value!r} outside a prepared compilation")
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


class _LiteralSink:
    """Default literal sink: inline every constant as a SQL literal."""

    def emit(self, value) -> str:
        return _sql_literal(value)

    def push(self) -> None:
        """Open a nested slot scope (repetition bodies); no-op here."""

    def pop(self) -> Tuple[str, ...]:
        return ()


class _ParamSink(_LiteralSink):
    """Prepared-compilation sink: parameters become ``?`` placeholders.

    Slot names are recorded in emission order, which — because every
    compilation rule interpolates sub-SQL in the order it compiles it —
    is also textual ``?`` order.  ``push``/``pop`` bracket repetition
    bodies so a materialized pair table's slots are split off the
    enclosing statement's list (the body text is replaced by a table
    name, taking its placeholders with it).
    """

    def __init__(self) -> None:
        self._stack: List[List[str]] = [[]]

    def emit(self, value) -> str:
        if isinstance(value, Parameter):
            self._stack[-1].append(value.name)
            return "?"
        return _sql_literal(value)

    def push(self) -> None:
        self._stack.append([])

    def pop(self) -> Tuple[str, ...]:
        return tuple(self._stack.pop())

    @property
    def slots(self) -> Tuple[str, ...]:
        """Slot names of the outermost (main statement) scope, in order."""
        return tuple(self._stack[0])


#: Shared default sink (stateless).
_LITERALS = _LiteralSink()


class _CursorStream:
    """Distinct-row iterator over a SQLite cursor, detachable by the engine.

    SQL row sets are bags while the engines' relations are sets, so a
    seen-set keeps the yielded rows distinct (matching
    :meth:`SQLiteEngine.evaluate`'s semantics exactly).  The engine holds
    a weak ref to every live stream: :meth:`SQLiteEngine.close` calls
    :meth:`detach` first, buffering the remaining rows so a streamed
    :class:`~repro.engine.session.QueryResult` stays readable after the
    backend connection (or an engine swap) takes the cursor away.  Temp
    tables owned by the stream (one-shot evaluation) are dropped when the
    cursor is exhausted, detached or abandoned.
    """

    def __init__(self, engine: "SQLiteEngine", cursor: sqlite3.Cursor, tables: List[str]):
        self._engine = engine
        self._cursor: Optional[sqlite3.Cursor] = cursor
        self._tables = tables
        self._seen: set = set()
        self._buffer: "deque[Tuple]" = deque()
        self._done = False

    def __iter__(self) -> "_CursorStream":
        return self

    def __next__(self) -> Tuple:
        while True:
            if self._buffer:
                return self._buffer.popleft()
            if self._done:
                raise StopIteration
            self._fetch_batch()

    def _fetch_batch(self) -> None:
        chunk = self._cursor.fetchmany(256)
        if not chunk:
            self._finish()
            return
        seen = self._seen
        for raw in chunk:
            row = tuple(raw)
            if row not in seen:
                seen.add(row)
                self._buffer.append(row)

    def _finish(self) -> None:
        self._done = True
        self._release()

    def _release(self) -> None:
        """Idempotent cursor/temp-table teardown, shared by exhaustion,
        :meth:`detach` and garbage collection — safe to call twice and
        after the backing connection is gone."""
        cursor, self._cursor = self._cursor, None
        if cursor is not None:
            try:
                cursor.close()
            except sqlite3.Error:  # pragma: no cover - connection already gone
                pass
        tables, self._tables = self._tables, []
        self._engine._drop_tables(tables)

    def detach(self) -> None:
        """Buffer every remaining row and release the cursor."""
        while not self._done:
            self._fetch_batch()

    def close(self) -> None:
        """Release the cursor *without* buffering the remaining rows.

        The discard path of ``Connection.close(drain=False)``: the pooled
        connection is being recycled, nobody will read the rest of this
        stream, so drop the buffer and free the cursor/temp tables now
        instead of paying to materialize rows that go straight to GC.
        """
        if not self._done:
            self._done = True
            self._buffer.clear()
            self._release()

    def __del__(self):  # pragma: no cover - GC timing dependent
        if not self._done:
            self._done = True
            try:
                self._release()
            except sqlite3.Error:
                pass  # interpreter shutdown: the connection is already gone


def _sql_snippet(sql: str, limit: int = 120) -> str:
    """Whitespace-flattened SQL prefix for span tags."""
    flattened = " ".join(sql.split())
    return flattened if len(flattened) <= limit else flattened[: limit - 3] + "..."


def _relation_from_rows(rows, arity: int) -> Relation:
    # Materialize first: ``rows`` may be a sqlite3.Cursor, whose truth
    # value would not reflect emptiness in the arity-0 branch.
    rows = [tuple(row) for row in rows]
    if arity > 0:
        return Relation(arity, rows)
    return Relation(0, [()] if rows else [])


class _SQLiteCompiledQuery:
    """A prepared statement on the SQLite backend.

    Holds the compiled SQL text (with native ``?`` placeholders), the
    persisted view temp tables, and the deferred parameter-dependent pair
    tables; ``execute(bindings)`` binds slot values positionally and runs
    the statement on the engine's connection.  If the engine's connection
    was closed (and thus the temp tables dropped) since preparation, the
    statement transparently recompiles against the fresh connection.
    """

    def __init__(self, engine: "SQLiteEngine", query: Query):
        self.engine = engine
        self.query = query
        self.parameter_names = tuple(sorted(query_parameters(query)))
        #: Inferred slot types, filled in by the connection at prepare time.
        self.parameter_types: Dict[str, str] = {}
        self.executions = 0
        self._compile()

    def _compile(self) -> None:
        engine = self.engine
        self._connection = engine.connection  # load the database first
        sink = _ParamSink()
        saved = (
            engine._params,
            engine._temp_tables_in_flight,
            engine._deferred_pairs,
            engine._preparing_statement,
        )
        engine._params, engine._temp_tables_in_flight, engine._deferred_pairs = sink, [], []
        engine._preparing_statement = self
        try:
            self._sql, self._arity = engine._compile(self.query)
            self._tables = list(engine._temp_tables_in_flight)
            self._deferred = list(engine._deferred_pairs)
            self._main_slots = sink.slots
        except BaseException:
            engine._drop_tables(engine._temp_tables_in_flight)
            raise
        finally:
            (
                engine._params,
                engine._temp_tables_in_flight,
                engine._deferred_pairs,
                engine._preparing_statement,
            ) = saved

    def execute(self, bindings: Optional[Bindings] = None, /, **named) -> Relation:
        """Execute with ``bindings`` (mapping and/or keywords, keywords
        win; the mapping argument is positional-only so a slot named
        ``bindings`` still binds by keyword)."""
        merged = merge_bindings(bindings, named)
        check_bindings(self.parameter_names, merged)
        if self.engine._connection is not self._connection:
            # The connection (and with it every temp table) went away since
            # preparation — e.g. engine.close(); recompile transparently.
            self._compile()
        engine = self.engine
        with engine._governed_execution():
            cursor = self._connection.cursor()
            for table, sql, slots in self._deferred:
                cursor.execute(f"DROP TABLE IF EXISTS {table}")
                cursor.execute(
                    f"CREATE TEMP TABLE {table} AS {sql}",
                    tuple(merged[name] for name in slots),
                )
                cursor.execute(f"CREATE INDEX idx_{table}_src ON {table}(src)")
                cursor.execute(f"CREATE INDEX idx_{table}_tgt ON {table}(tgt)")
            if self._deferred:
                self._connection.commit()
            arguments = tuple(merged[name] for name in self._main_slots)
            with trace_span("sqlite.execute", sql=_sql_snippet(self._sql), prepared=True):
                relation = _relation_from_rows(
                    engine._execute_with_retry(self._connection, self._sql, arguments),
                    self._arity,
                )
        self.executions += 1
        return relation

    def execute_stream(
        self, bindings: Optional[Bindings] = None, /, **named
    ) -> Optional[Tuple[int, Iterator[Tuple]]]:
        """Execute and stream the result rows off the SQLite cursor.

        Mirrors the engine-level :meth:`SQLiteEngine.stream` contract:
        ``(arity, distinct-row iterator)``, with binding errors raised
        here and rows fetched incrementally.  Returns ``None`` — the
        caller falls back to :meth:`execute` — for zero-arity results and
        for statements with parameter-dependent pair tables (those are
        re-materialized per execution, which an open streaming cursor
        from a previous execution must not observe).
        """
        if self._arity == 0 or self._deferred:
            return None
        merged = merge_bindings(bindings, named)
        check_bindings(self.parameter_names, merged)
        if self.engine._connection is not self._connection:
            self._compile()
        arguments = tuple(merged[name] for name in self._main_slots)
        with trace_span("sqlite.execute", sql=_sql_snippet(self._sql), prepared=True), \
                self.engine._governed_execution():
            cursor = self.engine._execute_with_retry(self._connection, self._sql, arguments)
        self.executions += 1
        # Statement-owned temp tables persist for the statement's
        # lifetime; the stream only owns (and closes) its cursor.
        return self._arity, self.engine._stream_cursor(cursor, [])

    def close(self) -> None:
        """Drop the statement's persisted temp tables (deferred included —
        ``_materialize_pair_table`` records every table it allocates)."""
        if self.engine._connection is self._connection:
            self.engine._drop_tables(self._tables)


def _compile_ra_condition(condition: Condition, alias: str, emit=_sql_literal) -> str:
    if isinstance(condition, TrueCondition):
        return "1 = 1"
    if isinstance(condition, ColumnEquals):
        return f"{alias}.c{condition.left} = {alias}.c{condition.right}"
    if isinstance(condition, ColumnEqualsConstant):
        return f"{alias}.c{condition.position} = {emit(condition.constant)}"
    if isinstance(condition, ColumnCompare):
        operator = "<>" if condition.operator == "!=" else condition.operator
        return f"{alias}.c{condition.left} {operator} {alias}.c{condition.right}"
    if isinstance(condition, ColumnCompareConstant):
        operator = "<>" if condition.operator == "!=" else condition.operator
        return f"{alias}.c{condition.position} {operator} {emit(condition.constant)}"
    if isinstance(condition, RAAnd):
        return f"({_compile_ra_condition(condition.left, alias, emit)} AND {_compile_ra_condition(condition.right, alias, emit)})"
    if isinstance(condition, RAOr):
        return f"({_compile_ra_condition(condition.left, alias, emit)} OR {_compile_ra_condition(condition.right, alias, emit)})"
    if isinstance(condition, RANot):
        return f"NOT ({_compile_ra_condition(condition.operand, alias, emit)})"
    raise _SQLUnsupported(f"selection condition {type(condition).__name__}")


class _ViewTables:
    """Names of the materialized view tables R1..R6."""

    def __init__(self, nodes, edges, sources, targets, labels, properties):
        self.nodes = nodes
        self.edges = edges
        self.sources = sources
        self.targets = targets
        self.labels = labels
        self.properties = properties


class _PatternSQL:
    """Compiles unary-identifier patterns to SQL over the view tables.

    Every pattern compiles to a SELECT with columns ``src``, ``tgt`` and one
    column ``v_<name>`` per free variable.
    """

    def __init__(self, view: _ViewTables, materialize=None, params: _LiteralSink = _LITERALS):
        self.view = view
        self._alias_counter = itertools.count()
        #: Optional callback materializing a repetition body's pair
        #: relation into an indexed temp table (``(sql, slots) -> table
        #: name``); without it the pair relation is inlined as a subquery.
        self._materialize = materialize
        #: Literal sink: inlines constants, or (in prepared compilations)
        #: emits ``?`` placeholders and records slot names.
        self._params = params

    def _alias(self) -> str:
        return f"p{next(self._alias_counter)}"

    # -- pattern cases ---------------------------------------------------
    def compile(self, pattern: Pattern) -> Tuple[str, Tuple[str, ...]]:
        if isinstance(pattern, NodePattern):
            variables = (pattern.variable,) if pattern.variable else ()
            binding = f", n.c1 AS v_{pattern.variable}" if pattern.variable else ""
            sql = f"SELECT n.c1 AS src, n.c1 AS tgt{binding} FROM {self.view.nodes} AS n"
            return sql, variables
        if isinstance(pattern, EdgePattern):
            variables = (pattern.variable,) if pattern.variable else ()
            binding = f", e.c1 AS v_{pattern.variable}" if pattern.variable else ""
            src_col, tgt_col = ("s.c2", "t.c2") if pattern.forward else ("t.c2", "s.c2")
            sql = (
                f"SELECT {src_col} AS src, {tgt_col} AS tgt{binding} "
                f"FROM {self.view.edges} AS e "
                f"JOIN {self.view.sources} AS s ON s.c1 = e.c1 "
                f"JOIN {self.view.targets} AS t ON t.c1 = e.c1"
            )
            return sql, variables
        if isinstance(pattern, Concatenation):
            return self._compile_concatenation(pattern)
        if isinstance(pattern, Disjunction):
            return self._compile_disjunction(pattern)
        if isinstance(pattern, Filter):
            return self._compile_filter(pattern)
        if isinstance(pattern, Repetition):
            return self._compile_repetition(pattern)
        raise _SQLUnsupported(f"pattern node {type(pattern).__name__}")

    def _compile_concatenation(self, pattern: Concatenation) -> Tuple[str, Tuple[str, ...]]:
        left_sql, left_vars = self.compile(pattern.left)
        right_sql, right_vars = self.compile(pattern.right)
        left_alias, right_alias = self._alias(), self._alias()
        shared = [v for v in right_vars if v in left_vars]
        conditions = [f"{left_alias}.tgt = {right_alias}.src"]
        conditions += [f"{left_alias}.v_{v} = {right_alias}.v_{v}" for v in shared]
        variables = tuple(left_vars) + tuple(v for v in right_vars if v not in left_vars)
        bindings = [f"{left_alias}.v_{v} AS v_{v}" for v in left_vars]
        bindings += [f"{right_alias}.v_{v} AS v_{v}" for v in right_vars if v not in left_vars]
        select_bindings = (", " + ", ".join(bindings)) if bindings else ""
        sql = (
            f"SELECT {left_alias}.src AS src, {right_alias}.tgt AS tgt{select_bindings} "
            f"FROM ({left_sql}) AS {left_alias} JOIN ({right_sql}) AS {right_alias} "
            f"ON {' AND '.join(conditions)}"
        )
        return sql, variables

    def _compile_disjunction(self, pattern: Disjunction) -> Tuple[str, Tuple[str, ...]]:
        left_sql, left_vars = self.compile(pattern.left)
        right_sql, right_vars = self.compile(pattern.right)
        variables = tuple(sorted(set(left_vars)))
        if set(left_vars) != set(right_vars):
            raise _SQLUnsupported("disjunction branches with different variables")
        order = ["src", "tgt"] + [f"v_{v}" for v in variables]
        columns = ", ".join(order)
        sql = (
            f"SELECT {columns} FROM ({left_sql}) UNION SELECT {columns} FROM ({right_sql})"
        )
        return sql, variables

    def _compile_filter(self, pattern: Filter) -> Tuple[str, Tuple[str, ...]]:
        body_sql, variables = self.compile(pattern.body)
        alias = self._alias()
        predicate = self._compile_condition(pattern.condition, alias, variables)
        columns = ", ".join(["src", "tgt"] + [f"v_{v}" for v in variables])
        sql = f"SELECT {columns} FROM ({body_sql}) AS {alias} WHERE {predicate}"
        return sql, variables

    def _compile_repetition(self, pattern: Repetition) -> Tuple[str, Tuple[str, ...]]:
        # Slots emitted while compiling the body belong to the pair table,
        # not to the enclosing statement: the body SQL (placeholders and
        # all) is replaced below by a table reference, which the prefix and
        # CTE rules repeat freely without duplicating any `?`.
        self._params.push()
        body_sql, _variables = self.compile(pattern.body)
        # The repetition erases bindings; only (src, tgt) pairs matter.
        # Materializing them (indexed on src/tgt) evaluates the body's
        # per-step label/property conditions exactly once — the CTE then
        # walks a plain indexed edge relation instead of re-deriving the
        # conditions from the pattern on every extension.
        pair_sql = f"SELECT DISTINCT src, tgt FROM ({body_sql})"
        slots = self._params.pop()
        if self._materialize is not None:
            pair_ref = self._materialize(pair_sql, slots)
        elif slots:
            raise _SQLUnsupported(
                "a parameterized repetition body is repeated in the compiled "
                "SQL and must be materialized (engine-backed compilations only)"
            )
        else:
            pair_ref = f"({pair_sql})"
        if not pattern.is_unbounded:
            return self._bounded_repetition(pair_ref, pattern.lower, int(pattern.upper)), ()
        # psi^{lower..inf} = (exactly `lower` steps) composed with psi^*:
        # seeding the recursion with the exact-`lower` prefix keeps the
        # CTE's working set at (src, tgt) pairs closed by saturation — no
        # step counter, so a pair is derived once instead of once per
        # depth (the walk(src, tgt, steps) formulation was quadratic in
        # practice: every pair re-entered the queue at up to
        # lower + |N| depths).
        prefix = self._exact_prefix(pair_ref, pattern.lower)
        cte = (
            "WITH RECURSIVE reach(src, tgt) AS ("
            f" SELECT src, tgt FROM ({prefix})"
            f" UNION SELECT reach.src, pair.tgt"
            f" FROM reach JOIN {pair_ref} AS pair ON reach.tgt = pair.src"
            ") "
            "SELECT src AS src, tgt AS tgt FROM reach"
        )
        return cte, ()

    def _exact_prefix(self, pair_ref: str, lower: int) -> str:
        """SQL for the pairs reachable in exactly ``lower`` body steps."""
        if lower == 0:
            return f"SELECT n.c1 AS src, n.c1 AS tgt FROM {self.view.nodes} AS n"
        current = f"SELECT src, tgt FROM {pair_ref}"
        for _ in range(lower - 1):
            previous_alias, pair_alias = self._alias(), self._alias()
            current = (
                f"SELECT {previous_alias}.src AS src, {pair_alias}.tgt AS tgt "
                f"FROM ({current}) AS {previous_alias} "
                f"JOIN {pair_ref} AS {pair_alias} ON {previous_alias}.tgt = {pair_alias}.src"
            )
        return f"SELECT DISTINCT src, tgt FROM ({current})"

    def _bounded_repetition(self, pair_ref: str, lower: int, upper: int) -> str:
        selects = []
        if lower == 0:
            selects.append(f"SELECT n.c1 AS src, n.c1 AS tgt FROM {self.view.nodes} AS n")
        current = None
        for count in range(1, upper + 1):
            if current is None:
                current = f"SELECT src, tgt FROM {pair_ref}"
            else:
                previous_alias, pair_alias = self._alias(), self._alias()
                current = (
                    f"SELECT {previous_alias}.src AS src, {pair_alias}.tgt AS tgt "
                    f"FROM ({current}) AS {previous_alias} "
                    f"JOIN {pair_ref} AS {pair_alias} ON {previous_alias}.tgt = {pair_alias}.src"
                )
            if count >= max(lower, 1):
                selects.append(current)
        return " UNION ".join(f"SELECT DISTINCT src, tgt FROM ({part})" for part in selects)

    # -- conditions --------------------------------------------------------
    def _compile_condition(
        self, condition: PatternCondition, alias: str, variables: Tuple[str, ...]
    ) -> str:
        def var_column(name: str) -> str:
            if name not in variables:
                raise _SQLUnsupported(f"condition variable {name!r} is not bound")
            return f"{alias}.v_{name}"

        if isinstance(condition, HasLabel):
            return (
                f"EXISTS (SELECT 1 FROM {self.view.labels} AS lab "
                f"WHERE lab.c1 = {var_column(condition.var)} AND lab.c2 = {_sql_literal(condition.label)})"
            )
        if isinstance(condition, PropertyCompare):
            operator = "<>" if condition.operator == "!=" else condition.operator
            return (
                f"EXISTS (SELECT 1 FROM {self.view.properties} AS prop "
                f"WHERE prop.c1 = {var_column(condition.var)} AND prop.c2 = {_sql_literal(condition.key)} "
                f"AND prop.c3 {operator} {self._params.emit(condition.constant)})"
            )
        if isinstance(condition, PropertyEquals):
            return (
                f"EXISTS (SELECT 1 FROM {self.view.properties} AS p1, {self.view.properties} AS p2 "
                f"WHERE p1.c1 = {var_column(condition.left_var)} AND p1.c2 = {_sql_literal(condition.left_key)} "
                f"AND p2.c1 = {var_column(condition.right_var)} AND p2.c2 = {_sql_literal(condition.right_key)} "
                f"AND p1.c3 = p2.c3)"
            )
        if isinstance(condition, PropertyComparesProperty):
            operator = "<>" if condition.operator == "!=" else condition.operator
            return (
                f"EXISTS (SELECT 1 FROM {self.view.properties} AS p1, {self.view.properties} AS p2 "
                f"WHERE p1.c1 = {var_column(condition.left_var)} AND p1.c2 = {_sql_literal(condition.left_key)} "
                f"AND p2.c1 = {var_column(condition.right_var)} AND p2.c2 = {_sql_literal(condition.right_key)} "
                f"AND p1.c3 {operator} p2.c3)"
            )
        if isinstance(condition, AndCondition):
            left = self._compile_condition(condition.left, alias, variables)
            right = self._compile_condition(condition.right, alias, variables)
            return f"({left} AND {right})"
        if isinstance(condition, OrCondition):
            left = self._compile_condition(condition.left, alias, variables)
            right = self._compile_condition(condition.right, alias, variables)
            return f"({left} OR {right})"
        if isinstance(condition, NotCondition):
            return f"NOT ({self._compile_condition(condition.operand, alias, variables)})"
        raise _SQLUnsupported(f"pattern condition {type(condition).__name__}")

    # -- output patterns ----------------------------------------------------
    def compile_output(self, output: OutputPattern) -> str:
        output.validate()
        body_sql, variables = self.compile(output.pattern)
        alias = self._alias()
        items = []
        joins = []
        for index, item in enumerate(output.items):
            if isinstance(item, PropertyRef):
                prop_alias = f"out_prop{index}"
                joins.append(
                    f"JOIN {self.view.properties} AS {prop_alias} "
                    f"ON {prop_alias}.c1 = {alias}.v_{item.variable} "
                    f"AND {prop_alias}.c2 = {_sql_literal(item.key)}"
                )
                items.append(f"{prop_alias}.c3 AS c{index + 1}")
            else:
                items.append(f"{alias}.v_{item} AS c{index + 1}")
        select_items = ", ".join(items) if items else "1"
        join_sql = (" " + " ".join(joins)) if joins else ""
        return f"SELECT DISTINCT {select_items} FROM ({body_sql}) AS {alias}{join_sql}"
