"""The top-level catalog API: ``Database`` -> ``Snapshot`` -> ``Connection``.

A :class:`Database` is a catalog of relational tables and property-graph
definitions with **MVCC-style versioning**: every DDL or data change
(``create_table``, ``register_graph``, ``drop_graph``) produces a new
version instead of mutating state other readers can observe.
:meth:`Database.snapshot` captures the current version as an immutable,
content-fingerprinted :class:`Snapshot`, and :meth:`Database.connect`
hands out lightweight :class:`~repro.engine.session.Connection` objects
pinned to one snapshot:

>>> from repro.engine.database import Database
>>> db = Database()
>>> db.create_table("Account", ["iban"], [("A1",), ("A2",)])
>>> db.create_table("Transfer", ["t_id", "src_iban", "tgt_iban", "ts", "amount"], rows)
>>> db.execute("CREATE PROPERTY GRAPH Transfers ( ... )")
>>> with db.connect(engine="planned") as conn:
...     conn.execute("SELECT * FROM GRAPH_TABLE ( Transfers MATCH ... )")

DDL on the live database never invalidates snapshots already handed out:
a connection keeps reading the version it was connected against, and a
new ``connect()`` (or ``snapshot()``) observes the new head.

**Shared materialization.**  All snapshot-scoped derived state — the
materialized ``pgView`` graphs together with their compact integer
encodings and pattern matchers, concrete relational subquery results
(cross-query CSE), and compiled-plan caches — lives in a lock-guarded
:class:`SnapshotCache` keyed on ``(snapshot content fingerprint, engine
kind)`` rather than in per-engine private caches.  N connections over
one snapshot therefore pay each cold materialization exactly once; the
cache lock guarantees exactly-once builds even under concurrent
executions, which :meth:`SnapshotCache.stats` lets tests assert.
Because keys carry the *content* fingerprint, re-registering identical
data (or two databases configured with one shared cache) also reuses
warm state.

Engines opt in through the optional ``use_snapshot_cache(scope)`` hook
of the engine protocol: connections attach a :class:`SnapshotScope` —
the cache handle pre-keyed with the snapshot fingerprint and an
engine-kind discriminator — right after ``create_engine``.  Engines
without the hook (third-party or legacy backends) simply keep their
private caches.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.analysis.semantic import analyze_ddl
from repro.errors import (
    AnalysisSchemaError,
    ConnectionClosedError,
    EngineError,
    ReproError,
)
from repro.governance import AdmissionController, QueryBudget
from repro.observability.metrics import MetricsRegistry, default_registry
from repro.observability.tracing import Tracer, tracer_from_env
from repro.planner.physical import PlanCache
from repro.relational.database import Database as RelationalDatabase
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, Schema
from repro.sqlpgq.ast import CreatePropertyGraph
from repro.sqlpgq.catalog import GraphCatalog, GraphDefinition
from repro.sqlpgq.parser import parse_statement


class SnapshotCache:
    """Lock-guarded store of snapshot-scoped derived state.

    Entries are keyed by ``(family, snapshot fingerprint, engine kind,
    ...)`` tuples built by :class:`SnapshotScope`.  Cold builds are
    coordinated per key: the thread that registers first builds with no
    lock held (nested lookups from inside a build — view sources
    consulting the relational CSE — proceed freely, and unrelated keys
    build in parallel), while racers for the *same* key wait on the
    build's event, so every materialization still happens exactly once.
    The store is a bounded LRU: evicting an entry another engine still
    holds is harmless, it only means a future cold lookup rebuilds it.

    :meth:`stats` reports build/hit counters per family plus the number
    of compact encodings paid across all cached view graphs — the
    figures the sharing tests (and ``Explain.shared``) assert.
    """

    def __init__(self, *, max_entries: int = 512):
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        #: In-flight cold builds: key -> Event set when the build settles
        #: (successfully or not), so same-key racers wait instead of
        #: rebuilding and disjoint keys never serialize on each other.
        self._building: Dict[Tuple, threading.Event] = {}
        #: Live referents per snapshot fingerprint (see :meth:`retain`):
        #: when a fingerprint's WeakSet drains, its entries are GC'd.
        self._referents: Dict[str, "weakref.WeakSet"] = {}
        self._stats: Dict[str, int] = {
            "views_built": 0,
            "views_shared_hits": 0,
            "relations_built": 0,
            "relations_shared_hits": 0,
            "plan_caches_built": 0,
            "plan_caches_shared_hits": 0,
            "evictions": 0,
            "gc_evicted": 0,
        }

    def _get_or_build(
        self, key: Tuple, build: Callable[[], Any], family: str
    ) -> Optional[Tuple[Any, bool]]:
        """``(value, built_cold)`` for ``key``, or None when uncacheable.

        Unhashable keys (user values without ``__hash__`` inside a query)
        are not cached; the caller evaluates privately.
        """
        try:
            hash(key)
        except TypeError:
            return None
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._stats[family + "_shared_hits"] += 1
                    return entry, False
                pending = self._building.get(key)
                if pending is None:
                    settled = threading.Event()
                    self._building[key] = settled
                    break  # this thread builds
            # Another thread is building this exact key: wait for it to
            # settle, then re-check (a hit on success; a retry when the
            # builder raised and registered nothing).
            pending.wait()
        try:
            value = build()
        except BaseException:
            with self._lock:
                del self._building[key]
            settled.set()
            raise
        with self._lock:
            self._entries[key] = value
            self._stats[family + "_built"] += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._stats["evictions"] += 1
            del self._building[key]
        settled.set()
        return value, True

    # -- snapshot-level GC ----------------------------------------------- #
    def retain(self, fingerprint: str, referent: Any) -> None:
        """Register ``referent`` (a connection) as a live user of the
        snapshot identified by ``fingerprint``.

        Referents are held weakly; when the last one for a fingerprint is
        garbage-collected, every cache entry keyed under that fingerprint
        is dropped (tallied in the ``gc_evicted`` stat and the
        ``repro_snapshot_cache_gc_evicted`` metric).  Entries for
        fingerprints nobody ever retained — direct :class:`SnapshotScope`
        users — are never GC'd this way.
        """
        with self._lock:
            referents = self._referents.get(fingerprint)
            if referents is None:
                referents = self._referents[fingerprint] = weakref.WeakSet()
            if referent not in referents:
                referents.add(referent)
                weakref.finalize(referent, self._collect_fingerprint, fingerprint)

    def _collect_fingerprint(self, fingerprint: str) -> int:
        """Drop ``fingerprint``'s entries if no live referent remains."""
        with self._lock:
            referents = self._referents.get(fingerprint)
            if referents is None or len(referents):
                return 0
            del self._referents[fingerprint]
            stale = [
                key for key in self._entries if len(key) > 1 and key[1] == fingerprint
            ]
            for key in stale:
                del self._entries[key]
            self._stats["gc_evicted"] += len(stale)
            return len(stale)

    def gc(self) -> int:
        """Drop entries of every snapshot with no live referent left;
        returns how many entries were evicted.

        Runs automatically when a retaining connection is garbage
        collected; calling it directly forces a sweep (useful after an
        explicit ``del`` + ``gc.collect()``).
        """
        with self._lock:
            fingerprints = list(self._referents)
        return sum(self._collect_fingerprint(fp) for fp in fingerprints)

    def stats(self) -> Dict[str, int]:
        """Copy of the build/hit counters plus derived materialization
        figures (``views_cached``, ``compact_encodings``, ``entries``)."""
        with self._lock:
            info = dict(self._stats)
            views = 0
            encodings = 0
            for key, value in self._entries.items():
                if key[0] == "view":
                    views += 1
                    encodings += value[0].compact_build_count()
            info["views_cached"] = views
            info["compact_encodings"] = encodings
            info["entries"] = len(self._entries)
            return info

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._referents.clear()
            for key in self._stats:
                self._stats[key] = 0


class SnapshotScope:
    """One engine's handle onto the shared cache.

    The scope carries the snapshot's content fingerprint and an
    *engine-kind* discriminator (backend name plus every option that
    changes matcher semantics — ``max_repetitions``, ``compact``,
    fixpoint sharding), so two engines share an entry exactly when they
    would compute the same value.  Relational CSE entries deliberately
    omit the kind: every backend must produce identical relations for a
    concrete relational subquery, so those results are shared
    cross-engine as well.
    """

    __slots__ = ("cache", "fingerprint", "kind")

    def __init__(self, cache: SnapshotCache, fingerprint: str, kind: Tuple):
        self.cache = cache
        self.fingerprint = fingerprint
        self.kind = kind

    def with_kind(self, kind: Tuple) -> "SnapshotScope":
        """A sibling scope over the same snapshot for another engine kind
        (e.g. the SQLite backend's oracle-fallback evaluator)."""
        return SnapshotScope(self.cache, self.fingerprint, kind)

    def view(
        self, key: Tuple, build: Callable[[], Any]
    ) -> Optional[Tuple[Any, bool]]:
        """Materialized-view entry ``(graph, identifier arity, matcher)``."""
        return self.cache._get_or_build(
            ("view", self.fingerprint, self.kind, key), build, "views"
        )

    def relation(
        self, query: Any, build: Callable[[], Any]
    ) -> Optional[Tuple[Any, bool]]:
        """Cross-engine CSE entry for one concrete relational subquery."""
        return self.cache._get_or_build(("rel", self.fingerprint, query), build, "relations")

    def plan_cache(self) -> PlanCache:
        """The shared compiled-plan cache of this (snapshot, kind) pair."""
        entry = self.cache._get_or_build(
            ("plans", self.fingerprint, self.kind),
            lambda: PlanCache(shared=True),
            "plan_caches",
        )
        return entry[0] if entry is not None else PlanCache()

    def stats(self) -> Dict[str, int]:
        return self.cache.stats()


class Snapshot:
    """An immutable, fingerprinted view of one :class:`Database` version.

    Holds the relational database instance, the column catalog and the
    property-graph DDL of the version it captured; the graph catalog is
    compiled lazily (statements a later schema change broke are recorded
    per snapshot, and referencing one raises the documented error while
    everything else keeps working).  ``data_fingerprint`` identifies the
    relational contents — the key shared derived state is cached under —
    and ``fingerprint`` additionally covers the graph DDL, identifying
    the snapshot itself.
    """

    def __init__(
        self,
        database: RelationalDatabase,
        columns: Mapping[str, Sequence[str]],
        graph_statements: Mapping[str, CreatePropertyGraph],
        version: int,
        cache: SnapshotCache,
    ):
        self._database = database
        self._columns = {name: tuple(cols) for name, cols in columns.items()}
        self._graph_statements = dict(graph_statements)
        self.version = version
        self._cache = cache
        self._catalog: Optional[GraphCatalog] = None
        self._invalid_graphs: Dict[str, str] = {}
        self._fingerprint: Optional[str] = None
        self._lock = threading.Lock()

    # -- identity -------------------------------------------------------- #
    @property
    def database(self) -> RelationalDatabase:
        """The immutable relational database instance of this version."""
        return self._database

    @property
    def columns(self) -> Dict[str, Tuple[str, ...]]:
        return dict(self._columns)

    @property
    def schema(self) -> Schema:
        return self._database.schema

    @property
    def data_fingerprint(self) -> str:
        """Content fingerprint of the relational data (cache keying)."""
        return self._database.content_fingerprint()

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of data *and* graph DDL (snapshot identity)."""
        if self._fingerprint is None:
            digest = hashlib.sha256(self.data_fingerprint.encode("ascii"))
            for name in sorted(self._graph_statements):
                statement = self._graph_statements[name]
                digest.update(f"{name}={statement!r};".encode("utf-8", "replace"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def cache(self) -> SnapshotCache:
        return self._cache

    def scope_for(self, kind: Tuple) -> SnapshotScope:
        """The shared-cache scope an engine of ``kind`` attaches to."""
        return SnapshotScope(self._cache, self.data_fingerprint, kind)

    # -- graph catalog --------------------------------------------------- #
    @property
    def catalog(self) -> GraphCatalog:
        """The compiled graph catalog, built on first use.

        Definitions that no longer compile against this version's schema
        are recorded in the invalid set (with the reason) instead of
        failing the whole snapshot — only queries referencing them raise.
        """
        if self._catalog is None:
            with self._lock:
                if self._catalog is None:
                    catalog = GraphCatalog(self.schema)
                    invalid: Dict[str, str] = {}
                    for name, statement in self._graph_statements.items():
                        try:
                            catalog.register(statement)
                        except ReproError as error:
                            invalid[name] = str(error)
                    self._invalid_graphs = invalid
                    self._catalog = catalog
        return self._catalog

    def check_graph_valid(self, name: str) -> None:
        self.catalog  # ensure the replay ran
        if name in self._invalid_graphs:
            raise EngineError(
                f"property graph {name!r} is no longer valid after a schema "
                f"change: {self._invalid_graphs[name]} (re-create it or call "
                f"drop_graph({name!r}))"
            )

    def graph_names(self) -> Tuple[str, ...]:
        """All graphs of this version, broken definitions included."""
        names = dict.fromkeys(self.catalog.names())
        names.update(dict.fromkeys(self._invalid_graphs))
        return tuple(names)

    def graph_definition(self, name: str) -> GraphDefinition:
        self.check_graph_valid(name)
        return self.catalog.get(name)

    def __repr__(self) -> str:
        return (
            f"Snapshot(version={self.version}, tables={len(self._columns)}, "
            f"graphs={len(self._graph_statements)}, fingerprint={self.fingerprint[:12]})"
        )


class Database:
    """The top-level catalog: tables and graphs with MVCC-style versioning.

    Mutators (``create_table``, ``register_graph``, ``drop_graph``) bump
    the version under the catalog lock; :meth:`snapshot` memoizes one
    immutable :class:`Snapshot` per version, and :meth:`connect` hands
    out :class:`~repro.engine.session.Connection` objects pinned to a
    snapshot.  Every connection of one database shares the database's
    :class:`SnapshotCache`, so repeated (and concurrent) work over the
    same snapshot materializes views, compact encodings and plans once.

    ``close()`` (or the context manager) closes every connection handed
    out — releasing SQLite backend connections and their cached temp
    tables — and clears the snapshot cache.
    """

    def __init__(
        self,
        *,
        snapshot_cache: Optional[SnapshotCache] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        slow_query_seconds: Optional[float] = None,
        verify_plans: Optional[bool] = None,
        strict_analysis: Optional[bool] = None,
        default_budget: Optional[QueryBudget] = None,
        max_concurrent_queries: Optional[int] = None,
        max_admission_queue: Optional[int] = None,
        admission_timeout_s: float = 5.0,
    ):
        """``snapshot_cache`` lets several databases (or processes' worth
        of sessions within one interpreter) share warm state; by default
        each database owns a private cache.

        ``tracer`` is the query-lifecycle tracer connections inherit
        (default: the one implied by the ``REPRO_TRACE`` env var, which
        is the disabled :data:`~repro.observability.NULL_TRACER` when the
        variable is unset).  ``metrics`` is the registry per-query
        figures are recorded into (default: the process-shared
        :func:`~repro.observability.default_registry`).
        ``slow_query_seconds`` arms the slow-query log: completed queries
        at or over the threshold emit a record — query text, bindings
        shape, snapshot fingerprint, stage breakdown — to the tracer's
        sinks and the ``repro.slow_query`` logger.

        ``verify_plans`` turns the optimizer plan-invariant verifier of
        :mod:`repro.analysis.verifier` on (``True``) or off (``False``)
        for every connection of this database; the default ``None``
        defers to the ``REPRO_VERIFY_PLANS`` environment variable.
        ``strict_analysis`` mirrors that contract for the analyzer's
        warning-severity findings (the A008+ dataflow codes): ``True``
        promotes them to :class:`~repro.errors.PGQAnalysisError` at
        prepare time on every connection, ``None`` defers to
        ``REPRO_STRICT_ANALYSIS``.

        ``default_budget`` is a :class:`~repro.governance.QueryBudget`
        every query of every connection runs under; per-call ``budget=``
        / ``timeout=`` arguments overlay it field-wise (most specific
        wins).  ``max_concurrent_queries`` arms admission control: at
        most that many queries execute at once across all connections,
        up to ``max_admission_queue`` more wait (unbounded queue when
        ``None``) for at most ``admission_timeout_s`` seconds, and
        everything beyond is rejected with
        :class:`~repro.errors.AdmissionTimeoutError`.
        """
        self._lock = threading.RLock()
        self._relations: Dict[str, Relation] = {}
        self._columns: Dict[str, Tuple[str, ...]] = {}
        self._graph_statements: Dict[str, CreatePropertyGraph] = {}
        self._version = 0
        self._head: Optional[RelationalDatabase] = None
        self._snapshot: Optional[Snapshot] = None
        #: An injected cache is shared property and survives close();
        #: only a privately owned cache is cleared with the database.
        self._owns_cache = snapshot_cache is None
        self._cache = snapshot_cache if snapshot_cache is not None else SnapshotCache()
        self._connections: "weakref.WeakSet" = weakref.WeakSet()
        self._closed = False
        self._tracer = tracer if tracer is not None else tracer_from_env()
        self._metrics = metrics if metrics is not None else default_registry()
        self.slow_query_seconds = slow_query_seconds
        self._verify_plans = verify_plans
        self._strict_analysis = strict_analysis
        #: Database-wide default budget; ``Connection.execute`` overlays
        #: per-call budgets on top of it field-wise.
        self.default_budget = default_budget
        self._admission = (
            AdmissionController(
                max_concurrent_queries,
                max_queue=max_admission_queue,
                timeout_s=admission_timeout_s,
                metrics=self._metrics,
            )
            if max_concurrent_queries is not None
            else None
        )

    # -- catalog state --------------------------------------------------- #
    @property
    def version(self) -> int:
        """The current catalog version (bumped by every DDL/data change)."""
        return self._version

    @property
    def snapshot_cache(self) -> SnapshotCache:
        return self._cache

    # -- observability --------------------------------------------------- #
    @property
    def tracer(self) -> Tracer:
        """The query-lifecycle tracer connections of this database inherit."""
        return self._tracer

    def use_tracer(self, tracer: Tracer) -> None:
        """Swap the database tracer; connections pick it up per statement."""
        self._tracer = tracer

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry per-query metrics are recorded into."""
        return self._metrics

    def set_slow_query_log(self, seconds: Optional[float]) -> None:
        """Arm (or with ``None`` disarm) the slow-query log threshold."""
        self.slow_query_seconds = seconds

    def export_metrics(self) -> Dict[str, Any]:
        """Snapshot of the registry with cache-level gauges synced in.

        Folds the :meth:`SnapshotCache.stats` figures (cold builds,
        shared hits, evictions — including ``gc_evicted``) into typed
        gauges under ``repro_snapshot_cache_*`` before collecting, so one
        call yields the complete per-process picture.  Use
        ``self.metrics.to_prometheus()`` / ``to_json()`` for the wire
        formats.
        """
        stats = self._cache.stats()
        self._metrics.set_gauges(
            {f"repro_snapshot_cache_{name}": value for name, value in stats.items()}
        )
        return self._metrics.collect()

    def table_names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._columns))

    def graph_names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._graph_statements)

    @property
    def admission(self) -> Optional[AdmissionController]:
        """The admission controller, or ``None`` when unbounded."""
        return self._admission

    def admission_stats(self) -> Dict[str, int]:
        """Live admission accounting; empty when admission is unbounded."""
        return self._admission.stats() if self._admission is not None else {}

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError("the database is closed", reason="database closed")

    def _bump(self) -> None:
        self._version += 1
        self._snapshot = None

    def _relational_head(self) -> RelationalDatabase:
        if self._head is None:
            schema = Schema(
                RelationSchema(name, len(cols), cols)
                for name, cols in self._columns.items()
            )
            self._head = RelationalDatabase(dict(self._relations), schema=schema)
        return self._head

    # -- DDL ------------------------------------------------------------- #
    def create_table(
        self, name: str, columns: Sequence[str], rows: Iterable[Sequence]
    ) -> None:
        """Create (or replace) a base table with named columns.

        Produces a new catalog version; snapshots already handed out keep
        the previous contents.
        """
        with self._lock:
            self._check_open()
            columns = tuple(columns)
            self._relations[name] = Relation(
                len(columns), [tuple(row) for row in rows], name=name
            )
            self._columns[name] = columns
            self._head = None
            self._bump()

    #: Compatibility alias mirroring the session-era verb.
    register_table = create_table

    def register_database(
        self, database: RelationalDatabase, columns: Mapping[str, Sequence[str]]
    ) -> None:
        """Register every relation of a relational database instance."""
        for name in database:
            if name not in columns:
                raise EngineError(f"no column names supplied for relation {name!r}")
            self.create_table(name, columns[name], database.relation(name).rows)

    def drop_table(self, name: str) -> bool:
        """Forget a base table; True when it existed."""
        with self._lock:
            self._check_open()
            if name not in self._relations:
                return False
            del self._relations[name]
            del self._columns[name]
            self._head = None
            self._bump()
            return True

    def register_graph(self, statement: CreatePropertyGraph) -> GraphDefinition:
        """Register a CREATE PROPERTY GRAPH statement (validated now).

        The definition must compile against the current schema — errors
        raise immediately and register nothing.  Registration bumps the
        version; existing snapshots (and the shared state cached for
        them) are untouched.
        """
        with self._lock:
            self._check_open()
            schema = self._relational_head().schema
            diagnostics = analyze_ddl(statement, schema)
            if diagnostics:
                raise AnalysisSchemaError(diagnostics)
            scratch = GraphCatalog(schema)
            definition = scratch.register(statement)
            self._graph_statements[definition.name] = statement
            self._bump()
            return definition

    def execute(self, statement_text: str) -> GraphDefinition:
        """Parse and apply one DDL statement (queries run on connections)."""
        statement = parse_statement(statement_text)
        if not isinstance(statement, CreatePropertyGraph):
            raise EngineError(
                "Database.execute() takes DDL (CREATE PROPERTY GRAPH); "
                "run queries through a connection: db.connect(...).execute(sql)"
            )
        return self.register_graph(statement)

    def drop_graph(self, name: str) -> bool:
        """Forget a graph definition; True when it was registered (broken
        definitions included — dropping is the documented way to clear
        their error)."""
        with self._lock:
            self._check_open()
            if name not in self._graph_statements:
                return False
            del self._graph_statements[name]
            self._bump()
            return True

    # -- snapshots and connections --------------------------------------- #
    def snapshot(self) -> Snapshot:
        """The immutable snapshot of the current version (memoized)."""
        with self._lock:
            self._check_open()
            if self._snapshot is None:
                self._snapshot = Snapshot(
                    self._relational_head(),
                    dict(self._columns),
                    dict(self._graph_statements),
                    self._version,
                    self._cache,
                )
            return self._snapshot

    def connect(
        self,
        engine: str = "naive",
        *,
        snapshot: Optional[Snapshot] = None,
        max_repetitions: Optional[int] = None,
        **engine_options,
    ):
        """A new :class:`~repro.engine.session.Connection`.

        The connection is pinned to ``snapshot`` (default: the current
        version) — later DDL on this database does not affect it.
        ``engine_options`` are forwarded to the backend factory verbatim;
        database-level ``verify_plans`` and ``strict_analysis`` settings
        are injected unless the caller passes their own.
        """
        from repro.engine.session import Connection

        if self._verify_plans is not None:
            engine_options.setdefault("verify_plans", self._verify_plans)
        if self._strict_analysis is not None:
            engine_options.setdefault("strict_analysis", self._strict_analysis)
        with self._lock:
            self._check_open()
            pinned = snapshot if snapshot is not None else self.snapshot()
        connection = Connection(
            self,
            pinned,
            engine=engine,
            max_repetitions=max_repetitions,
            **engine_options,
        )
        self._connections.add(connection)
        return connection

    def _track_connection(self, connection) -> None:
        self._connections.add(connection)

    # -- lifecycle ------------------------------------------------------- #
    def close(self) -> None:
        """Close every connection handed out and drop cached state.

        Closing releases each connection's backend (dropping SQLite
        connections and their cached temp tables) and clears the snapshot
        cache — unless the cache was injected via ``snapshot_cache=`` (it
        is then shared with other databases and left intact).  The
        database object rejects further use.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections = list(self._connections)
        for connection in connections:
            connection.close(reason="database closed")
        if self._owns_cache:
            self._cache.clear()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Database(version={self._version}, tables={len(self._columns)}, "
            f"graphs={len(self._graph_statements)})"
        )
