"""Typed metric instruments: counters, gauges, streaming histograms.

A :class:`MetricsRegistry` hands out named instruments with optional
label sets, Prometheus-style:

>>> registry = MetricsRegistry()
>>> registry.counter("repro_queries_total", engine="planned").inc()
>>> registry.histogram("repro_query_seconds", engine="planned").observe(0.004)
>>> print(registry.to_prometheus())

Instruments are cheap, lock-guarded and allocation-light so they can sit
on the per-query path.  :class:`Histogram` keeps fixed cumulative-bucket
counts (Prometheus ``le`` semantics) **and** a bounded reservoir of raw
observations, so p50/p95/p99 are exact while the stream fits the
reservoir and a deterministic subsample estimate after that.

Exports: :meth:`MetricsRegistry.collect` (plain dict),
:meth:`MetricsRegistry.to_json`, and
:meth:`MetricsRegistry.to_prometheus` (text exposition format).

Governance metrics (recorded by the engine/governance layers):

* ``repro_query_aborts_total{engine,kind}`` — executions aborted by
  governance; ``kind`` is ``timeout`` / ``cancelled`` /
  ``resource_exhausted`` / ``fault``.
* ``repro_admission_running`` / ``repro_admission_queued`` — live gauges
  of the database's admission controller.
* ``repro_admission_admitted_total`` / ``repro_admission_rejected_total``
  — admission outcomes (rejections cover queue overflow and admission
  timeouts).
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from bisect import bisect_left, insort
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds), 100µs .. 10s; +Inf is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Quantiles reported by :meth:`Histogram.percentiles`.
QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, float]:
        return {"value": self._value}


class Gauge:
    """A value that can go up and down (cache sizes, hit rates)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, float]:
        return {"value": self._value}


class Histogram:
    """A streaming distribution: fixed buckets plus quantile estimates.

    Bucket counts follow Prometheus semantics (cumulative ``le`` bounds
    with an implicit ``+Inf``).  Quantiles come from a bounded sorted
    reservoir: **exact** while the observation count stays within
    ``reservoir`` (the common case for per-process query streams), and a
    deterministic every-k-th subsample beyond that — no randomness, so
    repeated runs report identical figures.
    """

    __slots__ = (
        "_lock", "buckets", "_bucket_counts", "_count", "_sum",
        "_reservoir", "_reservoir_max", "_stride", "_since_kept",
    )

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        *,
        reservoir: int = 1024,
    ):
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self._bucket_counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._count = 0
        self._sum = 0.0
        self._reservoir: List[float] = []
        self._reservoir_max = max(int(reservoir), 2)
        #: Keep every ``_stride``-th observation once the reservoir is
        #: full; doubling the stride halves the kept set, keeping the
        #: subsample spread over the whole stream.
        self._stride = 1
        self._since_kept = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._bucket_counts[bisect_left(self.buckets, value)] += 1
            self._since_kept += 1
            if self._since_kept >= self._stride:
                self._since_kept = 0
                insort(self._reservoir, value)
                if len(self._reservoir) > self._reservoir_max:
                    # Thin to every other kept sample and double the stride.
                    self._reservoir = self._reservoir[::2]
                    self._stride *= 2

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) of the observed stream."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            sample = self._reservoir
            if not sample:
                return 0.0
            index = min(int(q * len(sample)), len(sample) - 1)
            return sample[index]

    def percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of the observed stream."""
        return {f"p{int(q * 100)}": self.quantile(q) for q in QUANTILES}

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le_bound, cumulative_count)`` pairs, ending with +Inf."""
        with self._lock:
            pairs: List[Tuple[float, int]] = []
            running = 0
            for bound, count in zip(self.buckets, self._bucket_counts):
                running += count
                pairs.append((bound, running))
            pairs.append((float("inf"), running + self._bucket_counts[-1]))
            return pairs

    def snapshot(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "count": self._count,
            "sum": self._sum,
            "buckets": [
                [bound, count] for bound, count in self.cumulative_buckets()
            ],
        }
        data.update(self.percentiles())
        return data


class _Family:
    """All instruments sharing one metric name (one per label set)."""

    __slots__ = ("name", "kind", "help", "instruments")

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.instruments: Dict[Tuple[Tuple[str, str], ...], Any] = {}


class MetricsRegistry:
    """A process-local registry of named, labelled metric instruments.

    ``counter`` / ``gauge`` / ``histogram`` return the existing
    instrument for a ``(name, labels)`` pair or create it; asking for one
    name with two different instrument types raises.  Export via
    :meth:`collect`, :meth:`to_json` or :meth:`to_prometheus`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    def _instrument(self, name: str, kind: str, help_text: str, labels: Dict[str, Any], make):
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(name, kind, help_text)
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            elif help_text and not family.help:
                family.help = help_text
            instrument = family.instruments.get(key)
            if instrument is None:
                instrument = family.instruments[key] = make()
            return instrument

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._instrument(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._instrument(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        make = (lambda: Histogram(buckets)) if buckets is not None else Histogram
        return self._instrument(name, "histogram", help, labels, make)

    def set_gauges(self, values: Dict[str, float], **labels: Any) -> None:
        """Bulk-set one gauge per ``{name: value}`` entry (absorbing an
        ad-hoc stats dict into typed instruments)."""
        for name, value in values.items():
            self.gauge(name, **labels).set(value)

    # -- export ---------------------------------------------------------- #
    def collect(self) -> Dict[str, Any]:
        """Every instrument's current state as plain data."""
        with self._lock:
            families = list(self._families.values())
        output: Dict[str, Any] = {}
        for family in families:
            values = []
            for key, instrument in sorted(family.instruments.items()):
                entry: Dict[str, Any] = {"labels": dict(key)}
                entry.update(instrument.snapshot())
                values.append(entry)
            output[family.name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return output

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`collect` payload as JSON."""
        return json.dumps(self.collect(), indent=indent, default=str)

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        with self._lock:
            families = list(self._families.values())
        lines: List[str] = []
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, instrument in sorted(family.instruments.items()):
                labels = dict(key)
                if isinstance(instrument, Histogram):
                    for bound, count in instrument.cumulative_buckets():
                        le = "+Inf" if bound == float("inf") else _format_value(bound)
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = le
                        lines.append(
                            f"{family.name}_bucket{_format_labels(bucket_labels)} {count}"
                        )
                    lines.append(
                        f"{family.name}_sum{_format_labels(labels)} "
                        f"{_format_value(instrument.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_format_labels(labels)} {instrument.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_format_labels(labels)} "
                        f"{_format_value(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in sorted(labels.items())
    )
    return "{" + parts + "}"


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    # Integers render without a trailing ".0" (Prometheus accepts both;
    # the shorter form diffs cleanly in tests and dashboards).
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


#: The process-default registry :class:`~repro.engine.database.Database`
#: records into unless given its own.
DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The shared process-default registry."""
    return DEFAULT_REGISTRY


def _dump_default_registry(path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(DEFAULT_REGISTRY.to_json(indent=2) + "\n")


_METRICS_ENV_PATH = os.environ.get("REPRO_METRICS")
if _METRICS_ENV_PATH:  # pragma: no cover - exercised by the CI example job
    atexit.register(_dump_default_registry, _METRICS_ENV_PATH)
