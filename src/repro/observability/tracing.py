"""Query-lifecycle tracing: nested spans, pluggable sinks, no-op default.

A :class:`Tracer` produces nested :class:`Span` records for the stages of
statement execution — ``parse -> compile -> plan -> optimize -> execute ->
decode`` — timed on the monotonic clock (``time.perf_counter``) and tagged
with stage-specific detail.  Spans nest per thread: each thread of a
shared tracer maintains its own span stack, so concurrent connections
never interleave their trees.  When a **root** span (one with no open
parent on its thread) finishes, the whole tree is rendered to a plain
dict and written to every configured sink.

The default tracer is :data:`NULL_TRACER`, a shared no-op whose spans do
nothing; callers on the hot path check ``tracer.enabled`` once at
statement setup and skip instrumentation entirely when tracing is off.
Deep layers (the parser, the plan cache, the fixpoint loop) use
:func:`trace_span`, which consults the ambient tracer installed by
:func:`activate` — a :mod:`contextvars` variable, so activation follows
the executing thread/task and costs one lookup when disabled.

Sinks implement a single method, ``write(record: dict)``:

* :class:`RingBufferSink` — bounded in-memory deque (tests, debugging);
* :class:`JsonLinesSink` — one JSON object per line, appended to a file;
* :class:`LoggingSink` — forwards records to stdlib :mod:`logging`.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from collections import deque
from contextvars import ContextVar
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


class Span:
    """One timed stage of the query lifecycle, usable as a context manager.

    Spans are created through :meth:`Tracer.span` and nest automatically:
    a span opened while another is active on the same thread becomes its
    child.  ``duration_s`` is filled at exit from the monotonic clock;
    :meth:`tag` attaches key/value detail at any point while open.
    """

    __slots__ = ("name", "tags", "children", "start_s", "duration_s", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.children: List["Span"] = []
        self.start_s = 0.0
        self.duration_s = 0.0

    def tag(self, **tags: Any) -> "Span":
        """Attach (or overwrite) tag values on the open span."""
        self.tags.update(tags)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """The span tree as plain data (what sinks receive for roots)."""
        record: Dict[str, Any] = {"name": self.name, "duration_s": self.duration_s}
        if self.tags:
            record["tags"] = dict(self.tags)
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_s = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.duration_s = perf_counter() - self.start_s
        self._tracer._pop(self)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, duration_s={self.duration_s:.6f}, children={len(self.children)})"


class _NoopSpan:
    """The span :data:`NULL_TRACER` hands out: every operation is free."""

    __slots__ = ()

    def tag(self, **tags: Any) -> "_NoopSpan":
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces nested spans and writes finished root spans to sinks.

    One tracer may serve many threads: span stacks are thread-local, so
    each thread builds an independent tree and only the sink writes
    synchronize (each sink guards its own state).  ``enabled`` is True
    for real tracers — the single flag hot paths check before opening
    spans.
    """

    enabled = True

    def __init__(self, sinks: Sequence[Any] = ()):
        self._sinks: Tuple[Any, ...] = tuple(sinks)
        self._local = threading.local()

    @property
    def sinks(self) -> Tuple[Any, ...]:
        return self._sinks

    def add_sink(self, sink: Any) -> None:
        """Attach another sink; it receives root spans finished after this."""
        self._sinks = self._sinks + (sink,)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **tags: Any) -> Span:
        """Open a new span (nested under the thread's current span)."""
        return Span(self, name, tags)

    def event(self, name: str, **tags: Any) -> None:
        """Record a zero-duration marker.

        Attached as a child of the thread's open span when there is one;
        otherwise emitted directly to the sinks as its own record.
        """
        marker = Span(self, name, tags)
        stack = self._stack()
        if stack:
            stack[-1].children.append(marker)
        else:
            self.emit(marker.to_dict())

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def emit(self, record: Dict[str, Any]) -> None:
        """Write one record dict to every sink (used for root spans and
        out-of-band records such as slow-query entries)."""
        for sink in self._sinks:
            sink.write(record)

    # -- span stack maintenance (called by Span.__enter__/__exit__) ------ #
    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate exits out of order (a leaked span from an error path):
        # unwind to the span being closed instead of corrupting the stack.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if not stack:
            self.emit(span.to_dict())


class _NullTracer(Tracer):
    """Shared disabled tracer: spans are no-ops, nothing is recorded."""

    enabled = False

    def __init__(self):
        super().__init__(())

    def span(self, name: str, **tags: Any) -> _NoopSpan:  # type: ignore[override]
        return NOOP_SPAN

    def event(self, name: str, **tags: Any) -> None:
        return None

    def emit(self, record: Dict[str, Any]) -> None:
        return None


NULL_TRACER = _NullTracer()

#: The ambient tracer deep layers consult via :func:`active_tracer`.
_ACTIVE: "ContextVar[Tracer]" = ContextVar("repro_active_tracer", default=NULL_TRACER)


def active_tracer() -> Tracer:
    """The tracer installed for the current context (NULL_TRACER when off)."""
    return _ACTIVE.get()


def activate(tracer: Tracer):
    """Install ``tracer`` as the ambient tracer; returns a reset token."""
    return _ACTIVE.set(tracer)


def deactivate(token) -> None:
    """Restore the ambient tracer saved in ``token``."""
    _ACTIVE.reset(token)


def trace_span(name: str, **tags: Any):
    """A span on the ambient tracer (a free no-op when tracing is off).

    The instrumentation idiom for deep layers::

        with trace_span("optimize", nodes=plan_size(plan)):
            ...
    """
    return _ACTIVE.get().span(name, **tags)


def tracer_from_env() -> Tracer:
    """The tracer implied by the environment: a JSON-lines tracer when
    ``REPRO_TRACE`` names a file, else :data:`NULL_TRACER`.

    This is what :class:`~repro.engine.database.Database` installs by
    default, so ``REPRO_TRACE=trace.jsonl python script.py`` traces any
    unmodified program.
    """
    path = os.environ.get("REPRO_TRACE")
    if not path:
        return NULL_TRACER
    return Tracer(sinks=(JsonLinesSink(path),))


class RingBufferSink:
    """Keeps the last ``capacity`` records in memory (tests, debugging)."""

    def __init__(self, capacity: int = 256):
        self._lock = threading.Lock()
        self._records: "deque[Dict[str, Any]]" = deque(maxlen=capacity)

    def write(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    def records(self) -> List[Dict[str, Any]]:
        """A snapshot copy of the buffered records, oldest first."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class JsonLinesSink:
    """Appends one JSON object per record to a file (opened lazily).

    Values that are not JSON-native are rendered with ``str`` so a span
    tag can safely carry arbitrary objects.
    """

    def __init__(self, path: Any, *, append: bool = True):
        self._path = os.fspath(path)
        self._append = append
        self._lock = threading.Lock()
        self._file = None

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, default=str)
        with self._lock:
            if self._file is None:
                self._file = open(self._path, "a" if self._append else "w", encoding="utf-8")
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class LoggingSink:
    """Forwards records to stdlib :mod:`logging` as single-line JSON."""

    def __init__(self, logger: Any = "repro.trace", level: int = logging.INFO):
        self._logger = logging.getLogger(logger) if isinstance(logger, str) else logger
        self._level = level

    def write(self, record: Dict[str, Any]) -> None:
        self._logger.log(self._level, "%s", json.dumps(record, default=str))


def iter_spans(record: Dict[str, Any]) -> Iterable[Dict[str, Any]]:
    """Depth-first iteration over one emitted span record and its children."""
    yield record
    for child in record.get("children", ()):
        yield from iter_spans(child)
