"""EXPLAIN ANALYZE support: per-operator execution profiles.

An :class:`ExecutionProfiler` is installed for the duration of one
statement execution (via :func:`activate_profiler`, a contextvar like the
tracer's) and the physical executor reports into it from
``PlanExecutor.execute`` / ``execute_compact``: inclusive wall time, rows
produced and memo hits per plan node, on both the boxed and the columnar
path.  After the run, :meth:`ExecutionProfiler.plan_trees` reassembles
the recorded figures into :class:`OperatorStats` trees by walking the
plan's own ``children()`` structure — the profiler never imports the
planner, so the observability package stays dependency-free.

Engines without a physical plan (the naive oracle, the SQLite
translation) still produce a profile: the connection adds lifecycle
*stage* operators (parse, compile, execute, decode) around whatever the
engine reports, so ``Connection.explain_analyze`` renders a tree with
wall times and row counts on every backend.
"""

from __future__ import annotations

from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional


@dataclass
class OperatorStats:
    """Execution figures for one operator (or lifecycle stage).

    ``wall_s`` is inclusive (children's time counted in the parent's),
    matching how nested operators actually spend their caller's budget;
    ``rows_out`` is ``None`` when the operator produced no row set this
    run (e.g. it was served from the executor memo).
    """

    label: str
    wall_s: float = 0.0
    calls: int = 0
    rows_out: Optional[int] = None
    memo_hits: int = 0
    children: List["OperatorStats"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        """The profile subtree as indented text, one operator per line."""
        parts = [f"{'  ' * indent}{self.label}  ({self._figures()})"]
        parts.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(parts)

    def _figures(self) -> str:
        figures = [f"wall={self.wall_s * 1000:.3f}ms"]
        if self.rows_out is not None:
            figures.append(f"rows={self.rows_out}")
        if self.memo_hits:
            figures.append(f"memo_hits={self.memo_hits}")
        if self.calls != 1:
            figures.append(f"calls={self.calls}")
        return " ".join(figures)

    def find(self, label_part: str) -> Optional["OperatorStats"]:
        """Depth-first search for the first operator whose label contains
        ``label_part`` (test/assertion convenience)."""
        if label_part in self.label:
            return self
        for child in self.children:
            found = child.find(label_part)
            if found is not None:
                return found
        return None

    def __str__(self) -> str:
        return self.render()


class ExecutionProfiler:
    """Collects per-plan-node execution figures during one statement run.

    The executor calls :meth:`record` / :meth:`memo_hit` with the plan
    node itself; nodes are keyed by equality when hashable (plan nodes
    are frozen dataclasses, and repeated executions of one node must
    accumulate) with an identity fallback otherwise.  :meth:`add_root`
    marks the bound root plan(s) the run executed so :meth:`plan_trees`
    knows where to start walking.
    """

    def __init__(self):
        self._entries: Dict[Hashable, OperatorStats] = {}
        self._roots: List[Any] = []
        self._labeler: Optional[Any] = None

    def use_labeler(self, label_fn: Any) -> None:
        """Install a fallback ``node -> label`` renderer for plan nodes the
        run never executed (subtrees behind a memo hit still render with
        their operator labels instead of bare class names).  Survives
        :meth:`reset` — the labeler describes the plan language, not the
        run."""
        self._labeler = label_fn

    def _key(self, node: Any) -> Hashable:
        try:
            hash(node)
        except TypeError:
            return ("id", id(node))
        return node

    def _entry(self, node: Any, label: str) -> OperatorStats:
        key = self._key(node)
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = OperatorStats(label=label)
        return entry

    def record(self, node: Any, label: str, wall_s: float, rows_out: int) -> None:
        """One execution of ``node``: inclusive wall time and rows produced."""
        entry = self._entry(node, label)
        entry.calls += 1
        entry.wall_s += wall_s
        entry.rows_out = rows_out if entry.rows_out is None else entry.rows_out + rows_out

    def memo_hit(self, node: Any, label: str) -> None:
        """The executor served ``node`` from its per-run memo."""
        self._entry(node, label).memo_hits += 1

    def add_root(self, node: Any) -> None:
        """Mark a bound root plan executed by this run."""
        if all(existing is not node for existing in self._roots):
            self._roots.append(node)

    def reset(self) -> None:
        """Forget everything recorded (the columnar-fallback path restarts
        the run on the boxed executor; figures must not double-count)."""
        self._entries.clear()
        self._roots.clear()

    def plan_trees(self) -> List[OperatorStats]:
        """The recorded figures as operator trees, one per executed root.

        Walks each root plan's ``children()`` structure (duck-typed; any
        object without ``children`` is a leaf) and deep-copies the
        recorded stats into a detached tree, so the profile survives the
        profiler's reuse or reset.
        """
        return [self._subtree(root) for root in self._roots]

    def _subtree(self, node: Any) -> OperatorStats:
        entry = self._entries.get(self._key(node))
        if entry is None:
            label = None
            if self._labeler is not None:
                try:
                    label = self._labeler(node)
                except Exception:
                    label = None
            stats = OperatorStats(label=label or type(node).__name__)
        else:
            stats = OperatorStats(
                label=entry.label,
                wall_s=entry.wall_s,
                calls=entry.calls,
                rows_out=entry.rows_out,
                memo_hits=entry.memo_hits,
            )
        children = getattr(node, "children", None)
        if children is not None:
            stats.children = [self._subtree(child) for child in children()]
        return stats


#: The ambient profiler the physical executor reports into (None = off).
_ACTIVE_PROFILER: "ContextVar[Optional[ExecutionProfiler]]" = ContextVar(
    "repro_active_profiler", default=None
)


def active_profiler() -> Optional[ExecutionProfiler]:
    """The profiler installed for the current context, if any."""
    return _ACTIVE_PROFILER.get()


def activate_profiler(profiler: ExecutionProfiler):
    """Install ``profiler`` as the ambient profiler; returns a reset token."""
    return _ACTIVE_PROFILER.set(profiler)


def deactivate_profiler(token) -> None:
    """Restore the ambient profiler saved in ``token``."""
    _ACTIVE_PROFILER.reset(token)
