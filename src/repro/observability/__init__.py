"""Dependency-free observability layer: tracing, metrics, EXPLAIN ANALYZE.

Three cooperating pieces, all stdlib-only and import-cycle-free (nothing
here imports the engine or the planner):

* :mod:`repro.observability.tracing` — nested, monotonic-clock
  :class:`Span` trees over the query lifecycle, produced by a
  :class:`Tracer` and written to pluggable sinks (ring buffer, JSON
  lines, stdlib logging).  Disabled by default via :data:`NULL_TRACER`.
* :mod:`repro.observability.metrics` — a :class:`MetricsRegistry` of
  counters, gauges and streaming histograms with p50/p95/p99 estimates,
  exportable as a dict, JSON or Prometheus text.
* :mod:`repro.observability.analyze` — the :class:`ExecutionProfiler`
  behind ``Connection.explain_analyze``, assembling per-operator
  :class:`OperatorStats` trees (wall time, rows, memo hits).

See the README's "Observability" section for the end-to-end tour.
"""

from repro.observability.analyze import (
    ExecutionProfiler,
    OperatorStats,
    activate_profiler,
    active_profiler,
    deactivate_profiler,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.observability.tracing import (
    NULL_TRACER,
    JsonLinesSink,
    LoggingSink,
    RingBufferSink,
    Span,
    Tracer,
    activate,
    active_tracer,
    deactivate,
    iter_spans,
    trace_span,
    tracer_from_env,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_REGISTRY",
    "ExecutionProfiler",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "LoggingSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "OperatorStats",
    "RingBufferSink",
    "Span",
    "Tracer",
    "activate",
    "activate_profiler",
    "active_profiler",
    "active_tracer",
    "deactivate",
    "deactivate_profiler",
    "default_registry",
    "iter_spans",
    "trace_span",
    "tracer_from_env",
]
