"""Compact integer encoding of a property graph (the columnar core).

The executors of :mod:`repro.planner.physical` spend their time hashing and
comparing boxed :class:`~repro.graph.identifiers.Identifier` tuples.  This
module interns a :class:`~repro.graph.property_graph.PropertyGraph` into
dense integer IDs once, so the hot operators can run over plain ``int``
columns and decode back to identifiers only at output projection:

* **ID interning** — nodes are numbered ``0..n-1`` and edges ``0..m-1``;
  ``node_ids``/``edge_ids`` decode an ID back to its identifier tuple and
  ``node_index``/``edge_index`` intern the other way;
* **CSR adjacency** — forward and backward neighbor lists in compressed
  sparse row form (``array``-backed offsets/targets/edge columns), plus
  flat per-edge ``edge_src``/``edge_tgt`` columns for edge scans;
* **label bitsets** — one big-int bitmask per label over node IDs and one
  over edge IDs, so a labeled scan is bit iteration instead of frozenset
  intersection;
* **property columns** — per-key dense value columns (one list per ID
  space, built lazily), replacing per-row dictionary probes at projection
  time.

Instances are immutable snapshots: :meth:`PropertyGraph.compact` caches
one per graph and rebuilds it when the graph's mutation version moves, so
executors never observe a stale encoding.  The build is lock-guarded and
counted (``PropertyGraph.compact_build_count``): view graphs shared
across connections of one database snapshot (the engine-level
``SnapshotCache``) encode exactly once no matter how many executors race
for the first use, and the snapshot cache's stats surface the encode
count so sharing is testable.

The module also hosts the **sharded reachability closure** used by the
planner's repetition fixpoint: per-source frontier BFS over successor
bitmasks, optionally partitioned into source strips evaluated on a
``concurrent.futures`` worker pool.  Shards share the read-only adjacency
masks, so the partitioning is safe under CPython's memory model; the gain
is bounded by the GIL today but the strip decomposition is exactly the
layout a free-threaded build (or a process pool over serialized masks)
parallelizes without code changes.
"""

from __future__ import annotations

from array import array
from concurrent.futures import ThreadPoolExecutor, wait as futures_wait
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.graph.identifiers import Identifier
from repro.observability.tracing import active_tracer

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.graph.property_graph import PropertyGraph

#: Sentinel for "property undefined on this element" inside dense columns
#: (``None`` is a legal property value).
MISSING = object()

#: Bit offsets set within each possible byte value: decoding a bitmask is
#: one table lookup per non-zero byte instead of per-bit big-int twiddling.
BYTE_POSITIONS = tuple(
    tuple(offset for offset in range(8) if (byte >> offset) & 1) for byte in range(256)
)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        mask ^= low
        yield low.bit_length() - 1


class CompactGraph:
    """Immutable integer-ID snapshot of one property graph.

    Built through :meth:`PropertyGraph.compact`, which caches the snapshot
    and invalidates it on graph mutation; ``version`` records the graph
    version the snapshot encodes and ``encode_seconds`` what building it
    cost (surfaced as the ``compact_encode_s`` counter).
    """

    __slots__ = (
        "graph",
        "version",
        "encode_seconds",
        "node_ids",
        "node_index",
        "edge_ids",
        "_edge_index",
        "edge_src",
        "edge_tgt",
        "_fwd_csr",
        "_bwd_csr",
        "_node_label_masks",
        "_edge_label_masks",
        "_property_columns",
    )

    def __init__(self, graph: "PropertyGraph", *, version: int = 0):
        start = perf_counter()
        self.graph = graph
        self.version = version

        self.node_ids: List[Identifier] = list(graph.nodes)
        self.node_index: Dict[Identifier, int] = {
            ident: i for i, ident in enumerate(self.node_ids)
        }
        edges = list(graph.edge_tuples())
        self.edge_ids: List[Identifier] = [edge.ident for edge in edges]
        # The edge interning map is only consulted by label bitsets and
        # edge property columns; built on first use.
        self._edge_index: Optional[Dict[Identifier, int]] = None
        node_index = self.node_index
        self.edge_src = array("q", (node_index[edge.source] for edge in edges))
        self.edge_tgt = array("q", (node_index[edge.target] for edge in edges))

        # CSR adjacency is derived from the flat edge columns on first
        # navigation; scans and the fixpoint run off the columns directly,
        # so eager construction would tax every encode.
        self._fwd_csr = None
        self._bwd_csr = None

        # Label bitsets and per-key property columns are built on first
        # use: unlabeled scans and property-free queries never pay for
        # them, and queries that do touch a label/key pay exactly once.
        self._node_label_masks: Optional[Dict[str, int]] = None
        self._edge_label_masks: Optional[Dict[str, int]] = None
        self._property_columns: Dict[Tuple[str, str], List[Any]] = {}
        self.encode_seconds = perf_counter() - start
        tracer = active_tracer()
        if tracer.enabled:
            tracer.event(
                "compact.encode",
                seconds=self.encode_seconds,
                nodes=len(self.node_ids),
                edges=len(self.edge_ids),
            )

    def _build_label_masks(self) -> None:
        node_masks: Dict[str, int] = {}
        edge_masks: Dict[str, int] = {}
        node_index, edge_index = self.node_index, self.edge_index
        for label, elements in self.graph.label_index().items():
            node_mask = 0
            edge_mask = 0
            for element in elements:
                position = node_index.get(element)
                if position is not None:
                    node_mask |= 1 << position
                else:
                    position = edge_index.get(element)
                    if position is not None:
                        edge_mask |= 1 << position
            node_masks[label] = node_mask
            edge_masks[label] = edge_mask
        self._node_label_masks = node_masks
        self._edge_label_masks = edge_masks

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        return len(self.node_ids)

    @property
    def edge_count(self) -> int:
        return len(self.edge_ids)

    @property
    def edge_index(self) -> Dict[Identifier, int]:
        """Edge identifier -> dense ID interning map, built on first use."""
        if self._edge_index is None:
            self._edge_index = {ident: i for i, ident in enumerate(self.edge_ids)}
        return self._edge_index

    # ------------------------------------------------------------------ #
    # Labels
    # ------------------------------------------------------------------ #
    def node_label_mask(self, label: str) -> int:
        """Bitmask over node IDs carrying ``label`` (0 when absent)."""
        if self._node_label_masks is None:
            self._build_label_masks()
        return self._node_label_masks.get(label, 0)

    def edge_label_mask(self, label: str) -> int:
        """Bitmask over edge IDs carrying ``label`` (0 when absent)."""
        if self._edge_label_masks is None:
            self._build_label_masks()
        return self._edge_label_masks.get(label, 0)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    def property_column(self, key: str, kind: str) -> List[Any]:
        """Dense value column of property ``key`` over one ID space.

        ``kind`` is ``"node"`` or ``"edge"``; absent values hold the
        :data:`MISSING` sentinel.  Columns are built once per (key, kind)
        and shared by every projection afterwards.
        """
        cached = self._property_columns.get((key, kind))
        if cached is not None:
            return cached
        if kind == "node":
            index, size = self.node_index, len(self.node_ids)
        else:
            index, size = self.edge_index, len(self.edge_ids)
        column: List[Any] = [MISSING] * size
        for ident, value in self.graph.property_index(key).items():
            position = index.get(ident)
            if position is not None:
                column[position] = value
        self._property_columns[(key, kind)] = column
        return column

    # ------------------------------------------------------------------ #
    # CSR navigation
    # ------------------------------------------------------------------ #
    @property
    def forward_csr(self) -> Tuple[array, array, array]:
        """``(offsets, targets, edge IDs)`` of the forward adjacency."""
        if self._fwd_csr is None:
            self._fwd_csr = _build_csr(
                len(self.node_ids), len(self.edge_ids), self.edge_src, self.edge_tgt
            )
        return self._fwd_csr

    @property
    def backward_csr(self) -> Tuple[array, array, array]:
        """``(offsets, sources, edge IDs)`` of the reversed adjacency."""
        if self._bwd_csr is None:
            self._bwd_csr = _build_csr(
                len(self.node_ids), len(self.edge_ids), self.edge_tgt, self.edge_src
            )
        return self._bwd_csr

    def successors(self, node: int) -> Sequence[int]:
        """Target node IDs of the forward edges leaving ``node``."""
        offsets, targets, _edges = self.forward_csr
        return targets[offsets[node] : offsets[node + 1]]

    def predecessors(self, node: int) -> Sequence[int]:
        """Source node IDs of the edges entering ``node``."""
        offsets, sources, _edges = self.backward_csr
        return sources[offsets[node] : offsets[node + 1]]

    def out_edges(self, node: int) -> Sequence[int]:
        """Edge IDs leaving ``node`` (parallel to :meth:`successors`)."""
        offsets, _targets, edges = self.forward_csr
        return edges[offsets[node] : offsets[node + 1]]

    def in_edges(self, node: int) -> Sequence[int]:
        """Edge IDs entering ``node`` (parallel to :meth:`predecessors`)."""
        offsets, _sources, edges = self.backward_csr
        return edges[offsets[node] : offsets[node + 1]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactGraph(nodes={len(self.node_ids)}, edges={len(self.edge_ids)}, "
            f"version={self.version})"
        )


def _build_csr(
    node_count: int, edge_count: int, sources: Sequence[int], targets: Sequence[int]
) -> Tuple[array, array, array]:
    """Compressed sparse rows: ``(offsets, neighbor column, edge column)``.

    ``offsets`` has ``node_count + 1`` entries; node ``i``'s neighbors live
    at ``neighbors[offsets[i]:offsets[i + 1]]`` with the edge that carries
    each neighbor at the same slot of the edge column.
    """
    counts = [0] * (node_count + 1)
    for source in sources:
        counts[source + 1] += 1
    for i in range(1, node_count + 1):
        counts[i] += counts[i - 1]
    offsets = array("q", counts)
    neighbors = array("q", bytes(8 * edge_count))
    edge_column = array("q", bytes(8 * edge_count))
    cursor = list(offsets[:node_count]) if node_count else []
    for edge_id in range(edge_count):
        source = sources[edge_id]
        slot = cursor[source]
        neighbors[slot] = targets[edge_id]
        edge_column[slot] = edge_id
        cursor[source] = slot + 1
    return offsets, neighbors, edge_column


# --------------------------------------------------------------------------- #
# Reachability closure over successor bitmasks (serial and sharded)
# --------------------------------------------------------------------------- #
def bfs_closure_strip(
    successor_masks: Sequence[int], sources: Iterable[int]
) -> Tuple[List[int], int]:
    """Per-source frontier BFS over successor bitmasks.

    Returns one reachability mask per source (``>= 0`` steps, so the
    source's own bit is always set) and the deepest frontier round any
    source needed — the strip's round count for instrumentation.
    """
    masks: List[int] = []
    deepest = 0
    append = masks.append
    for source in sources:
        reach = 1 << source
        frontier = reach
        depth = 0
        while frontier:
            depth += 1
            step = 0
            remaining = frontier
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                step |= successor_masks[low.bit_length() - 1]
            frontier = step & ~reach
            reach |= frontier
        append(reach)
        if depth > deepest:
            deepest = depth
    return masks, deepest


def propagate_closure(
    successor_masks: Sequence[int], *, on_round=None
) -> Tuple[List[int], int]:
    """Serial closure by worklist-driven OR propagation (word-parallel).

    Every node's reach mask absorbs its successors' masks until nothing
    changes; rounds merge whole masks, so each step is a big-int OR —
    which beats per-source BFS whenever the closure is dense relative to
    the edge count (the common case for the repetition-heavy workloads).
    A predecessor worklist keeps later rounds incremental: only nodes with
    a successor whose reach just grew are recomputed, instead of sweeping
    every edge until global convergence.  ``on_round`` (when given) is
    invoked once per propagation round — the governance layer's
    cooperative checkpoint hook; it may raise to abort the closure.
    """
    node_count = len(successor_masks)
    reach = [(1 << i) | successor_masks[i] for i in range(node_count)]
    predecessors: Dict[int, List[int]] = {}
    setdefault = predecessors.setdefault
    changed = set()
    seeded = changed.add
    for i, mask in enumerate(successor_masks):
        if mask:
            seeded(i)  # the seeding pass above grew these
            for j in iter_bits(mask):
                setdefault(j, []).append(i)
    rounds = 1
    if on_round is not None:
        on_round()
    while changed:
        rounds += 1
        if on_round is not None:
            on_round()
        next_changed = set()
        grew = next_changed.add
        for j in changed:
            parents = predecessors.get(j)
            if not parents:
                continue
            reach_j = reach[j]
            for i in parents:
                reach_i = reach[i]
                merged = reach_i | reach_j
                if merged != reach_i:
                    reach[i] = merged
                    grew(i)
        changed = next_changed
    return reach, rounds


def closure_masks(
    successor_masks: Sequence[int], *, shards: int = 1, on_round=None
) -> Tuple[List[int], int, int]:
    """Reachability masks for every node, optionally sharded.

    With ``shards > 1`` the source range is partitioned into contiguous
    strips and each strip's BFS runs as one worker-pool task; callers gate
    on graph size so small fixpoints never pay the pool setup.  Returns
    ``(masks, rounds, shards_used)`` where ``rounds`` is the deepest strip
    (strips run concurrently, so the deepest one bounds the wall clock).
    ``on_round`` is the per-round cooperative checkpoint hook; on the
    sharded path the coordinating thread invokes it periodically *while*
    the pool drains (worker strips must stay hook-free: a hook raising
    inside a worker would strand its siblings).  A raising hook abandons
    the pool without waiting — in-flight strips are pure reads of
    ``successor_masks`` and finish harmlessly in the background — so a
    deadline or cancellation lands within one poll interval instead of
    after the deepest strip completes.
    """
    node_count = len(successor_masks)
    shards = max(1, min(shards, node_count))  # never more strips than sources
    if shards <= 1:
        masks, rounds = propagate_closure(successor_masks, on_round=on_round)
        return masks, rounds, 1
    strip_size = -(-node_count // shards)  # ceil division
    strips = [
        range(start, min(start + strip_size, node_count))
        for start in range(0, node_count, strip_size)
    ]
    pool = ThreadPoolExecutor(max_workers=len(strips))
    try:
        futures = [
            pool.submit(bfs_closure_strip, successor_masks, strip) for strip in strips
        ]
        if on_round is None:
            futures_wait(futures)
        else:
            while True:
                done, pending = futures_wait(futures, timeout=0.02)
                on_round()  # may raise: abort between polls
                if not pending:
                    break
        results = [future.result() for future in futures]
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    masks = []
    rounds = 0
    for strip_masks, strip_rounds in results:
        masks.extend(strip_masks)
        if strip_rounds > rounds:
            rounds = strip_rounds
    return masks, rounds, len(strips)


def compose_frontier(
    successor_masks: Sequence[int], frontier: int, steps: int
) -> int:
    """Advance a frontier bitmask ``steps`` composition rounds forward."""
    for _ in range(steps):
        if not frontier:
            break
        step = 0
        remaining = frontier
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            step |= successor_masks[low.bit_length() - 1]
        frontier = step
    return frontier
