"""Property graphs (Definition 2.1 of the paper).

A property graph is a tuple ``G = <N, E, src, tgt, lab, prop>`` where

* ``N`` is a finite set of node identifiers,
* ``E`` is a finite set of directed edge identifiers (disjoint from ``N``),
* ``src, tgt : E -> N`` assign a source and target node to every edge,
* ``lab`` associates a finite set of labels with every node or edge,
* ``prop`` is a finite partial function from ``(N ∪ E) × K`` to values.

Identifiers are canonical tuples (see :mod:`repro.graph.identifiers`); the
extended fragment of the paper allows arities greater than one, and this
class supports that uniformly.
"""

from __future__ import annotations

import threading
from types import MappingProxyType
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from repro.errors import GraphError
from repro.graph.identifiers import Identifier, as_identifier

if False:  # pragma: no cover - type hints only (import cycle guard)
    from repro.graph.compact import CompactGraph


class Edge(NamedTuple):
    """A directed edge together with its endpoints.

    ``ident``, ``source`` and ``target`` are canonical identifier tuples.
    A named tuple rather than a dataclass: bulk view materialization
    constructs one per edge, and tuple allocation is several times cheaper
    than a frozen dataclass ``__init__``.
    """

    ident: Identifier
    source: Identifier
    target: Identifier


class PropertyGraph:
    """Mutable property graph with n-ary identifiers.

    The class enforces the structural invariants of Definition 2.1:
    node and edge identifier sets are disjoint, every edge's endpoints are
    existing nodes, and properties/labels are attached only to existing
    elements.
    """

    def __init__(self) -> None:
        self._nodes: Set[Identifier] = set()
        self._edges: Dict[Identifier, Edge] = {}
        self._labels: Dict[Identifier, Set[str]] = {}
        self._properties: Dict[Tuple[Identifier, str], Any] = {}
        # Adjacency indexes; ``None`` means "build on first use" (bulk
        # construction defers them — the set-at-a-time evaluators never
        # navigate per node).
        self._outgoing: Optional[Dict[Identifier, Set[Identifier]]] = {}
        self._incoming: Optional[Dict[Identifier, Set[Identifier]]] = {}
        # Lazy label -> elements partition backing ``elements_with_label``;
        # invalidated whenever a label is attached.
        self._label_index: Optional[Dict[str, FrozenSet[Identifier]]] = None
        # Mutation version and the compact integer snapshot built for it;
        # ``compact()`` rebuilds whenever the version moves, so executors
        # never run on a stale encoding.
        self._version: int = 0
        self._compact: Optional["CompactGraph"] = None
        # Guards the lazy compact build so concurrent executors sharing
        # one snapshot graph encode it exactly once; ``_compact_builds``
        # counts the encodes that actually ran (snapshot-cache stats
        # assert one encode per shared view).
        self._compact_lock = threading.Lock()
        self._compact_builds: int = 0

    def _ensure_adjacency(self) -> None:
        if self._outgoing is None:
            outgoing = {node: set() for node in self._nodes}
            incoming = {node: set() for node in self._nodes}
            for edge in self._edges.values():
                outgoing[edge.source].add(edge.ident)
                incoming[edge.target].add(edge.ident)
            self._outgoing = outgoing
            self._incoming = incoming

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def _from_validated(
        cls,
        nodes: Iterable[Identifier],
        edges: Mapping[Identifier, Tuple[Identifier, Identifier]],
        labels: Dict[Identifier, Set[str]],
        properties: Dict[Tuple[Identifier, str], Any],
    ) -> "PropertyGraph":
        """Trusted bulk constructor for pre-validated components.

        The caller guarantees the Definition 2.1 invariants (canonical
        identifier tuples, disjoint node/edge sets, endpoints in ``N``,
        labels/properties on existing elements) — ``pgView`` does, because
        it runs the conditions (1)-(4) first.  Skipping the per-element
        re-checks of the incremental API makes view materialization linear
        with small constants.

        ``labels`` (a dict of label-string sets) and ``properties`` are
        **adopted**, not copied: the caller hands over ownership and must
        not mutate them afterwards.
        """
        graph = cls()
        graph._nodes = set(nodes)
        graph._edges = {
            ident: Edge(ident, source, target) for ident, (source, target) in edges.items()
        }
        graph._outgoing = None
        graph._incoming = None
        graph._labels = labels
        graph._properties = properties
        return graph

    def add_node(
        self,
        ident: Any,
        *,
        labels: Iterable[str] = (),
        properties: Optional[Mapping[str, Any]] = None,
    ) -> Identifier:
        """Add a node; returns its canonical identifier.

        Adding an existing node is idempotent for the identifier itself but
        still merges the provided labels and properties.
        """
        node = as_identifier(ident)
        if node in self._edges:
            raise GraphError(f"identifier {node!r} is already used by an edge")
        self._version += 1
        self._nodes.add(node)
        if self._outgoing is not None:
            self._outgoing.setdefault(node, set())
            self._incoming.setdefault(node, set())
        for label in labels:
            self.add_label(node, label)
        for key, value in (properties or {}).items():
            self.set_property(node, key, value)
        return node

    def add_edge(
        self,
        ident: Any,
        source: Any,
        target: Any,
        *,
        labels: Iterable[str] = (),
        properties: Optional[Mapping[str, Any]] = None,
    ) -> Identifier:
        """Add a directed edge from ``source`` to ``target``.

        Both endpoints must already be nodes of the graph (``src`` and ``tgt``
        are total functions into ``N`` in Definition 2.1).
        """
        edge = as_identifier(ident)
        src = as_identifier(source)
        tgt = as_identifier(target)
        if edge in self._nodes:
            raise GraphError(f"identifier {edge!r} is already used by a node")
        if src not in self._nodes:
            raise GraphError(f"source {src!r} is not a node of the graph")
        if tgt not in self._nodes:
            raise GraphError(f"target {tgt!r} is not a node of the graph")
        existing = self._edges.get(edge)
        if existing is not None and (existing.source != src or existing.target != tgt):
            raise GraphError(
                f"edge {edge!r} already exists with different endpoints "
                f"({existing.source!r} -> {existing.target!r})"
            )
        self._ensure_adjacency()
        self._version += 1
        self._edges[edge] = Edge(edge, src, tgt)
        self._outgoing[src].add(edge)
        self._incoming[tgt].add(edge)
        for label in labels:
            self.add_label(edge, label)
        for key, value in (properties or {}).items():
            self.set_property(edge, key, value)
        return edge

    def add_label(self, element: Any, label: str) -> None:
        """Attach ``label`` to an existing node or edge."""
        ident = as_identifier(element)
        if not self.has_element(ident):
            raise GraphError(f"cannot label unknown element {ident!r}")
        self._version += 1
        self._labels.setdefault(ident, set()).add(str(label))
        self._label_index = None

    def set_property(self, element: Any, key: str, value: Any) -> None:
        """Set property ``key`` of an existing node or edge to ``value``."""
        ident = as_identifier(element)
        if not self.has_element(ident):
            raise GraphError(f"cannot set property on unknown element {ident!r}")
        self._version += 1
        self._properties[(ident, str(key))] = value

    # ------------------------------------------------------------------ #
    # Accessors (the six components of Definition 2.1)
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> FrozenSet[Identifier]:
        """The node identifier set ``N``."""
        return frozenset(self._nodes)

    @property
    def edges(self) -> FrozenSet[Identifier]:
        """The edge identifier set ``E``."""
        return frozenset(self._edges)

    def _edge(self, edge: Any) -> Edge:
        ident = as_identifier(edge)
        if ident not in self._edges:
            raise GraphError(f"unknown edge {ident!r}")
        return self._edges[ident]

    def source(self, edge: Any) -> Identifier:
        """``src(e)`` — the source node of an edge."""
        return self._edge(edge).source

    def target(self, edge: Any) -> Identifier:
        """``tgt(e)`` — the target node of an edge."""
        return self._edge(edge).target

    def labels(self, element: Any) -> FrozenSet[str]:
        """``lab(x)`` — the (possibly empty) label set of a node or edge."""
        ident = as_identifier(element)
        if not self.has_element(ident):
            raise GraphError(f"unknown element {ident!r}")
        return frozenset(self._labels.get(ident, set()))

    def property(self, element: Any, key: str) -> Any:
        """``prop(x, k)`` — the property value, or ``None`` when undefined."""
        ident = as_identifier(element)
        return self._properties.get((ident, str(key)))

    def has_property(self, element: Any, key: str) -> bool:
        """Return True when ``prop`` is defined on ``(element, key)``."""
        return (as_identifier(element), str(key)) in self._properties

    def property_index(self, key: str) -> Dict[Identifier, Any]:
        """All elements carrying property ``key``, as an element -> value map.

        Bulk counterpart of :meth:`property` used by the planner's output
        projection: one pass over ``prop`` replaces a per-row lookup pair
        (``has_property`` + ``property``).
        """
        key = str(key)
        return {
            owner: value
            for (owner, owner_key), value in self._properties.items()
            if owner_key == key
        }

    def properties(self, element: Any) -> Dict[str, Any]:
        """All key/value properties of one element, as a plain dict."""
        ident = as_identifier(element)
        return {
            key: value
            for (owner, key), value in self._properties.items()
            if owner == ident
        }

    # ------------------------------------------------------------------ #
    # Membership / navigation
    # ------------------------------------------------------------------ #
    def has_node(self, ident: Any) -> bool:
        return as_identifier(ident) in self._nodes

    def has_edge(self, ident: Any) -> bool:
        return as_identifier(ident) in self._edges

    def has_element(self, ident: Any) -> bool:
        ident = as_identifier(ident)
        return ident in self._nodes or ident in self._edges

    def out_edges(self, node: Any) -> FrozenSet[Identifier]:
        """Edges whose source is ``node``."""
        self._ensure_adjacency()
        return frozenset(self._outgoing.get(as_identifier(node), set()))

    def in_edges(self, node: Any) -> FrozenSet[Identifier]:
        """Edges whose target is ``node``."""
        self._ensure_adjacency()
        return frozenset(self._incoming.get(as_identifier(node), set()))

    def successors(self, node: Any) -> FrozenSet[Identifier]:
        """Nodes reachable from ``node`` by a single forward edge."""
        return frozenset(self._edges[e].target for e in self.out_edges(node))

    def predecessors(self, node: Any) -> FrozenSet[Identifier]:
        """Nodes that reach ``node`` by a single forward edge."""
        return frozenset(self._edges[e].source for e in self.in_edges(node))

    def edge_tuples(self) -> Iterator[Edge]:
        """Iterate over all edges as :class:`Edge` records."""
        return iter(self._edges.values())

    def label_index(self) -> Mapping[str, FrozenSet[Identifier]]:
        """The full label -> elements partition, built lazily and cached.

        One pass over ``lab`` serves every labeled scan afterwards; the
        index is dropped whenever a label is attached, so incremental
        mutation stays correct.  Returned read-only so callers cannot
        corrupt the cached partition.
        """
        if self._label_index is None:
            partition: Dict[str, Set[Identifier]] = {}
            for ident, labels in self._labels.items():
                for label in labels:
                    partition.setdefault(label, set()).add(ident)
            self._label_index = {
                label: frozenset(elements) for label, elements in partition.items()
            }
        return MappingProxyType(self._label_index)

    def elements_with_label(self, label: str) -> FrozenSet[Identifier]:
        """All nodes and edges carrying ``label``."""
        return self.label_index().get(label, frozenset())

    def mutation_version(self) -> int:
        """Counter bumped by every mutator; caches key on it to detect
        staleness (:meth:`compact`, the planner's executor memos).

        A plain method, not a ``@property`` — this class defines its own
        ``property(element, key)`` accessor (``prop`` of Definition 2.1),
        which shadows the builtin inside the class body.
        """
        return self._version

    def compact(self) -> "CompactGraph":
        """The dense integer-ID encoding of this graph, built lazily.

        The snapshot (ID interning, CSR adjacency, label bitsets, property
        columns — see :class:`~repro.graph.compact.CompactGraph`) is cached
        and keyed on the graph's mutation version: any ``add_node`` /
        ``add_edge`` / ``add_label`` / ``set_property`` call invalidates it,
        so callers always observe the current graph.
        """
        from repro.graph.compact import CompactGraph

        cached = self._compact
        if cached is not None and cached.version == self._version:
            return cached
        # The build is lock-guarded: graphs shared across connections of
        # one database snapshot must encode once, not once per racing
        # executor (single-threaded callers pay one uncontended acquire).
        with self._compact_lock:
            cached = self._compact
            if cached is not None and cached.version == self._version:
                return cached
            built = CompactGraph(self, version=self._version)
            self._compact = built
            self._compact_builds += 1
        return built

    def compact_build_count(self) -> int:
        """How many compact encodings this graph has paid for (stats)."""
        return self._compact_builds

    def property_key_counts(self) -> Dict[str, int]:
        """Number of elements carrying each property key (statistics)."""
        from collections import Counter
        from operator import itemgetter

        # Counter over a C-level key extractor: one pass, no Python loop.
        return dict(Counter(map(itemgetter(1), self._properties)))

    # ------------------------------------------------------------------ #
    # Metrics & invariants
    # ------------------------------------------------------------------ #
    def node_count(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return len(self._edges)

    def out_degree(self, node: Any) -> int:
        return len(self.out_edges(node))

    def in_degree(self, node: Any) -> int:
        return len(self.in_edges(node))

    def node_arity(self) -> Optional[int]:
        """Common arity of node identifiers, or None for an empty node set.

        Raises :class:`GraphError` when nodes mix arities; mixed arities do
        not arise from ``pgView_=n`` but may be created by hand.
        """
        arities = {len(node) for node in self._nodes}
        if not arities:
            return None
        if len(arities) > 1:
            raise GraphError(f"nodes mix identifier arities: {sorted(arities)}")
        return arities.pop()

    def edge_arity(self) -> Optional[int]:
        """Common arity of edge identifiers, or None for an empty edge set."""
        arities = {len(edge) for edge in self._edges}
        if not arities:
            return None
        if len(arities) > 1:
            raise GraphError(f"edges mix identifier arities: {sorted(arities)}")
        return arities.pop()

    def validate(self) -> None:
        """Re-check all structural invariants; raises :class:`GraphError`."""
        overlap = self._nodes & set(self._edges)
        if overlap:
            raise GraphError(f"node and edge identifier sets overlap: {sorted(overlap)[:3]}")
        for edge in self._edges.values():
            if edge.source not in self._nodes:
                raise GraphError(f"edge {edge.ident!r} has dangling source {edge.source!r}")
            if edge.target not in self._nodes:
                raise GraphError(f"edge {edge.ident!r} has dangling target {edge.target!r}")
        for element in self._labels:
            if not self.has_element(element):
                raise GraphError(f"label attached to unknown element {element!r}")
        for element, _key in self._properties:
            if not self.has_element(element):
                raise GraphError(f"property attached to unknown element {element!r}")

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def subgraph(self, nodes: Iterable[Any]) -> "PropertyGraph":
        """Induced subgraph on the given node identifiers."""
        keep = {as_identifier(n) for n in nodes}
        result = PropertyGraph()
        for node in self._nodes & keep:
            result.add_node(node, labels=self._labels.get(node, set()),
                            properties=self.properties(node))
        for edge in self._edges.values():
            if edge.source in keep and edge.target in keep:
                result.add_edge(edge.ident, edge.source, edge.target,
                                labels=self._labels.get(edge.ident, set()),
                                properties=self.properties(edge.ident))
        return result

    def reversed(self) -> "PropertyGraph":
        """Graph with every edge direction flipped; labels/properties kept."""
        result = PropertyGraph()
        for node in self._nodes:
            result.add_node(node, labels=self._labels.get(node, set()),
                            properties=self.properties(node))
        for edge in self._edges.values():
            result.add_edge(edge.ident, edge.target, edge.source,
                            labels=self._labels.get(edge.ident, set()),
                            properties=self.properties(edge.ident))
        return result

    # ------------------------------------------------------------------ #
    # Equality / representation
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyGraph):
            return NotImplemented
        return (
            self._nodes == other._nodes
            and self._edges == other._edges
            and {k: set(v) for k, v in self._labels.items() if v}
            == {k: set(v) for k, v in other._labels.items() if v}
            and self._properties == other._properties
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("PropertyGraph is mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"PropertyGraph(nodes={len(self._nodes)}, edges={len(self._edges)}, "
            f"labels={sum(len(v) for v in self._labels.values())}, "
            f"properties={len(self._properties)})"
        )
