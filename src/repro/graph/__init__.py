"""Property graph data model (Definition 2.1 and Section 5 of the paper)."""

from repro.graph.compact import CompactGraph, closure_masks
from repro.graph.identifiers import (
    Identifier,
    as_identifier,
    identifier_arity,
    same_arity,
    unwrap_if_unary,
)
from repro.graph.property_graph import Edge, PropertyGraph

__all__ = [
    "CompactGraph",
    "Identifier",
    "as_identifier",
    "closure_masks",
    "identifier_arity",
    "same_arity",
    "unwrap_if_unary",
    "Edge",
    "PropertyGraph",
]
