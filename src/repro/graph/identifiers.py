"""Identifiers for property-graph elements.

The paper's read-only and read-write fragments use unary (single-value)
identifiers for nodes and edges, while the extended fragment ``PGQext``
(Section 5) generalizes identifiers to ``n``-ary tuples for any fixed
``n >= 1``.  Internally every identifier is represented uniformly as a
tuple, so arity-1 identifiers are 1-tuples.  The helpers in this module
normalize user-provided values into that canonical representation.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

from repro.errors import ArityError

#: Canonical identifier type: a non-empty tuple of hashable atomic values.
Identifier = Tuple[Any, ...]


def as_identifier(value: Any) -> Identifier:
    """Normalize ``value`` into a canonical identifier tuple.

    Scalars become 1-tuples; tuples and lists are converted element-wise.
    Nested tuples are rejected because identifiers are flat in the paper's
    model (components are domain elements of the relational structure).

    >>> as_identifier("a1")
    ('a1',)
    >>> as_identifier(("bank", "branch", 7))
    ('bank', 'branch', 7)
    """
    if isinstance(value, tuple):
        ident = value
    elif isinstance(value, list):
        ident = tuple(value)
    else:
        ident = (value,)
    if not ident:
        raise ArityError("identifiers must have arity >= 1, got the empty tuple")
    for component in ident:
        if isinstance(component, (tuple, list, set, dict)):
            raise ArityError(
                f"identifier components must be atomic domain values, got {component!r}"
            )
    return ident


def identifier_arity(value: Any) -> int:
    """Return the arity of ``value`` once normalized to an identifier."""
    return len(as_identifier(value))


def same_arity(identifiers: Iterable[Identifier]) -> bool:
    """Return True when all identifiers in the iterable share one arity.

    An empty iterable trivially satisfies the condition.
    """
    arities = {len(ident) for ident in identifiers}
    return len(arities) <= 1


def unwrap_if_unary(ident: Identifier) -> Any:
    """Return the single component of a unary identifier, else the tuple.

    This is the inverse of :func:`as_identifier` for presentation purposes:
    query results over unary graphs should expose plain values, matching the
    read-only/read-write fragments of the paper.
    """
    if len(ident) == 1:
        return ident[0]
    return ident


def flatten_identifier(ident: Identifier) -> Tuple[Any, ...]:
    """Return the components of an identifier as a flat tuple.

    Provided for symmetry with :func:`unwrap_if_unary`; canonical identifiers
    are already flat, so this is the identity on valid input.
    """
    return tuple(ident)
