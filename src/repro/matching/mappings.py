"""Operations on variable mappings (Section 2.3 of the paper).

A variable mapping ``mu`` assigns matched graph elements (node or edge
identifiers) to pattern variables.  The semantics composes matches with
three operations: restriction ``mu|_X``, the compatibility test
``mu1 ~ mu2`` (agreement on common variables), and the union
``mu1 |><| mu2`` of compatible mappings.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.graph.identifiers import Identifier

#: A variable mapping: variable name -> graph element identifier.
Mapping = Dict[str, Identifier]

#: The mapping with empty domain (``mu_emptyset`` in the paper).
EMPTY_MAPPING: Mapping = {}


def restrict(mapping: Mapping, variables: Iterable[str]) -> Mapping:
    """``mu |_X``: restriction of the mapping to the given variables."""
    keep = set(variables)
    return {var: value for var, value in mapping.items() if var in keep}


def compatible(left: Mapping, right: Mapping) -> bool:
    """``mu1 ~ mu2``: the mappings agree on all shared variables."""
    if len(left) > len(right):
        left, right = right, left
    return all(var not in right or right[var] == value for var, value in left.items())


def union(left: Mapping, right: Mapping) -> Mapping:
    """``mu1 |><| mu2``: union of two compatible mappings.

    The caller is responsible for checking :func:`compatible` first; on
    conflicting mappings the right-hand binding silently wins, matching the
    partial-function union only when compatibility holds.
    """
    if not left:
        return dict(right)
    if not right:
        return dict(left)
    merged = dict(left)
    merged.update(right)
    return merged


def join(left: Mapping, right: Mapping) -> Optional[Mapping]:
    """Union of the mappings when compatible, ``None`` otherwise."""
    if not compatible(left, right):
        return None
    return union(left, right)


def freeze(mapping: Mapping) -> Tuple[Tuple[str, Identifier], ...]:
    """Hashable canonical form of a mapping (sorted item tuple)."""
    return tuple(sorted(mapping.items()))


def thaw(frozen: Tuple[Tuple[str, Identifier], ...]) -> Mapping:
    """Inverse of :func:`freeze`."""
    return dict(frozen)


def domain(mapping: Mapping) -> FrozenSet[str]:
    """``dom(mu)``: the set of variables the mapping is defined on."""
    return frozenset(mapping)
