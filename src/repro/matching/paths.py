"""Path semantics of patterns (Figure 6, Appendix 9.1 of the paper).

Unlike the endpoint semantics of Figure 2, the path semantics
``[[psi]]^path_G`` materializes the full matched path ``p`` together with
the variable mapping.  Proposition 9.1 proves that projecting each pair
``(p, mu)`` to ``(src(p), tgt(p), mu)`` yields exactly the endpoint
semantics; :func:`project_endpoints` implements that projection and the
test-suite checks the equivalence on generated graphs and patterns.

Because a graph with cycles has infinitely many paths, unbounded
repetition is enumerated only up to ``max_repetitions`` iterations
(defaulting to the node count, which is sufficient for the endpoint
projection to saturate).  The evaluator is intended for validation and for
the semantics-equivalence benchmark, not for production evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import PatternError
from repro.graph.identifiers import Identifier
from repro.graph.property_graph import PropertyGraph
from repro.matching.endpoint import MatchSet
from repro.matching.mappings import EMPTY_MAPPING, compatible, freeze, thaw, union
from repro.patterns.ast import (
    Concatenation,
    Disjunction,
    EdgePattern,
    Filter,
    NodePattern,
    OutputPattern,
    Pattern,
    PropertyRef,
    Repetition,
)


@dataclass(frozen=True)
class Path:
    """A path: an alternating sequence of nodes and edges.

    ``nodes`` has one more element than ``edges``.  A single-vertex path has
    one node and no edges.
    """

    nodes: Tuple[Identifier, ...]
    edges: Tuple[Identifier, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise PatternError("a path must contain at least one node")
        if len(self.nodes) != len(self.edges) + 1:
            raise PatternError(
                f"path with {len(self.nodes)} nodes must have {len(self.nodes) - 1} edges, "
                f"got {len(self.edges)}"
            )

    @property
    def source(self) -> Identifier:
        """``src(p)``: the first node of the path."""
        return self.nodes[0]

    @property
    def target(self) -> Identifier:
        """``tgt(p)``: the last node of the path."""
        return self.nodes[-1]

    @property
    def length(self) -> int:
        """Number of edges on the path."""
        return len(self.edges)

    def concat(self, other: "Path") -> "Path":
        """``p1 . p2``: concatenation, requires ``tgt(p1) = src(p2)``."""
        if self.target != other.source:
            raise PatternError(
                f"cannot concatenate paths: target {self.target!r} != source {other.source!r}"
            )
        return Path(self.nodes + other.nodes[1:], self.edges + other.edges)

    @staticmethod
    def single(node: Identifier) -> "Path":
        """The single-vertex path on ``node``."""
        return Path((node,), ())


#: A path-semantics match: the path plus a frozen variable mapping.
PathMatch = Tuple[Path, Tuple[Tuple[str, Identifier], ...]]
PathMatchSet = FrozenSet[PathMatch]


class PathEvaluator:
    """Evaluates patterns under the path semantics of Figure 6."""

    def __init__(
        self,
        graph: PropertyGraph,
        *,
        max_repetitions: Optional[int] = None,
        strict: bool = False,
    ):
        self.graph = graph
        if max_repetitions is None:
            max_repetitions = max(graph.node_count(), 1)
        self.max_repetitions = max_repetitions
        #: With ``strict=True``, an unbounded repetition whose path set is
        #: still growing when the bound is hit raises :class:`PatternError`
        #: instead of silently truncating.  This is the path-semantics
        #: counterpart of the engines' ``max_repetitions`` guard (the
        #: engines evaluate under the endpoint semantics and enforce the
        #: bound in their fixpoint operators).
        self.strict = strict

    def evaluate(self, pattern: Pattern) -> PathMatchSet:
        """Compute ``[[pattern]]^path_G``."""
        pattern.validate()
        return self._eval(pattern)

    def _eval(self, pattern: Pattern) -> PathMatchSet:
        if isinstance(pattern, NodePattern):
            return self._eval_node(pattern)
        if isinstance(pattern, EdgePattern):
            return self._eval_edge(pattern)
        if isinstance(pattern, Concatenation):
            return self._eval_concatenation(pattern)
        if isinstance(pattern, Disjunction):
            return self._eval(pattern.left) | self._eval(pattern.right)
        if isinstance(pattern, Filter):
            return self._eval_filter(pattern)
        if isinstance(pattern, Repetition):
            return self._eval_repetition(pattern)
        raise PatternError(f"unknown pattern node {pattern!r}")

    def _eval_node(self, pattern: NodePattern) -> PathMatchSet:
        matches = set()
        for node in self.graph.nodes:
            mapping = {pattern.variable: node} if pattern.variable else {}
            matches.add((Path.single(node), freeze(mapping)))
        return frozenset(matches)

    def _eval_edge(self, pattern: EdgePattern) -> PathMatchSet:
        matches = set()
        for edge in self.graph.edge_tuples():
            mapping = {pattern.variable: edge.ident} if pattern.variable else {}
            if pattern.forward:
                path = Path((edge.source, edge.target), (edge.ident,))
            else:
                path = Path((edge.target, edge.source), (edge.ident,))
            matches.add((path, freeze(mapping)))
        return frozenset(matches)

    def _eval_concatenation(self, pattern: Concatenation) -> PathMatchSet:
        left = self._eval(pattern.left)
        right = self._eval(pattern.right)
        by_source: Dict[Identifier, List[PathMatch]] = {}
        for match in right:
            by_source.setdefault(match[0].source, []).append(match)
        matches = set()
        for (left_path, left_frozen) in left:
            left_mapping = thaw(left_frozen)
            for (right_path, right_frozen) in by_source.get(left_path.target, ()):
                right_mapping = thaw(right_frozen)
                if compatible(left_mapping, right_mapping):
                    merged = union(left_mapping, right_mapping)
                    matches.add((left_path.concat(right_path), freeze(merged)))
        return frozenset(matches)

    def _eval_filter(self, pattern: Filter) -> PathMatchSet:
        matches = self._eval(pattern.body)
        return frozenset(
            (path, frozen)
            for (path, frozen) in matches
            if pattern.condition.satisfied(self.graph, thaw(frozen))
        )

    def _eval_repetition(self, pattern: Repetition) -> PathMatchSet:
        body = self._eval(pattern.body)
        empty = freeze(EMPTY_MAPPING)
        if pattern.is_unbounded:
            upper = max(self.max_repetitions, pattern.lower)
        else:
            upper = int(pattern.upper)

        matches: Set[PathMatch] = set()
        # Exactly 0 repetitions: every single-vertex path (src(p) = tgt(p)).
        current: Set[Path] = {Path.single(node) for node in self.graph.nodes}
        if pattern.lower == 0:
            matches.update((path, empty) for path in current)
        by_source: Dict[Identifier, List[Path]] = {}
        for (body_path, _mu) in body:
            by_source.setdefault(body_path.source, []).append(body_path)
        for count in range(1, upper + 1):
            next_paths: Set[Path] = set()
            for prefix in current:
                for body_path in by_source.get(prefix.target, ()):
                    next_paths.add(prefix.concat(body_path))
            current = next_paths
            if not current:
                break
            if count >= pattern.lower:
                matches.update((path, empty) for path in current)
        if self.strict and pattern.is_unbounded and current:
            # The enumeration stopped at the bound with paths still alive;
            # probe one more round to see whether it actually truncated.
            # Only an extension producing a path not already enumerated is
            # truncation — zero-length body paths concatenate to a no-op,
            # and mixed-length bodies can re-derive known paths.
            matched_paths = {path for (path, _mu) in matches}
            for prefix in current:
                for body_path in by_source.get(prefix.target, ()):
                    if prefix.concat(body_path) not in matched_paths:
                        # upper is the effective enumeration depth; it can
                        # exceed max_repetitions when the pattern's lower
                        # bound is larger.
                        raise PatternError(
                            f"unbounded repetition still produces new paths "
                            f"after {upper} iterations "
                            f"(max_repetitions={self.max_repetitions}); raise "
                            f"the bound or use the endpoint semantics"
                        )
        return frozenset(matches)

    def evaluate_output(self, output: OutputPattern) -> FrozenSet[Tuple]:
        """``[[psi_Omega]]^path_G``: output tuples under the path semantics."""
        output.validate()
        matches = self._eval(output.pattern)
        rows: Set[Tuple] = set()
        for (_path, frozen) in matches:
            mapping = thaw(frozen)
            row: List = []
            defined = True
            for item in output.items:
                if isinstance(item, PropertyRef):
                    element = mapping.get(item.variable)
                    if element is None or not self.graph.has_property(element, item.key):
                        defined = False
                        break
                    row.append(self.graph.property(element, item.key))
                else:
                    element = mapping.get(item)
                    if element is None:
                        defined = False
                        break
                    row.extend(element)
            if defined:
                rows.add(tuple(row))
        return frozenset(rows)


def project_endpoints(matches: PathMatchSet) -> MatchSet:
    """``pi_end``: project path matches to endpoint triples (Prop. 9.1)."""
    return frozenset(
        (path.source, path.target, frozen) for (path, frozen) in matches
    )


def endpoint_path_equivalent(graph: PropertyGraph, pattern: Pattern) -> bool:
    """Check Proposition 9.1 on one graph and pattern.

    Returns True when ``pi_end([[psi]]^path_G) = [[psi]]_G``; used by tests
    and the semantics-equivalence benchmark.
    """
    from repro.matching.endpoint import EndpointEvaluator

    endpoint = EndpointEvaluator(graph).evaluate(pattern)
    paths = PathEvaluator(graph).evaluate(pattern)
    return project_endpoints(paths) == endpoint
