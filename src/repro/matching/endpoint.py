"""Endpoint semantics of patterns (Figure 2 of the paper).

The semantics ``[[psi]]_G`` of a pattern on a property graph ``G`` is a set
of triples ``(s, t, mu)`` where ``s`` and ``t`` are the source and target
nodes of a path matching ``psi`` and ``mu`` is a variable mapping for the
free variables.  The paper's key simplification (footnote 1) is that paths
are *not* stored: only endpoints and bindings are, which suffices for
composing patterns and drives the complexity results.

Unbounded repetition ``psi^{n..inf}`` is evaluated by a reachability
fixpoint over the endpoint-pair relation of the body, which terminates in
at most ``|N|`` rounds and keeps evaluation within NL data complexity
(Corollary 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import PatternError
from repro.governance import CHECK_INTERVAL, current_governor
from repro.graph.identifiers import Identifier
from repro.graph.property_graph import PropertyGraph
from repro.matching import fixpoint
from repro.matching.mappings import EMPTY_MAPPING, compatible, freeze, thaw, union
from repro.patterns.ast import (
    Concatenation,
    Disjunction,
    EdgePattern,
    Filter,
    NodePattern,
    OutputPattern,
    Pattern,
    PropertyRef,
    Repetition,
)

#: A single match triple ``(source, target, frozen mapping)``.
MatchTriple = Tuple[Identifier, Identifier, Tuple[Tuple[str, Identifier], ...]]

#: The full semantics of a pattern: a frozenset of match triples.
MatchSet = FrozenSet[MatchTriple]


@dataclass
class EvaluationCounters:
    """Instrumentation for the complexity experiments (Corollary 6.4).

    The counters record the dominant unit operations of the evaluator:
    triples produced, compatibility checks during concatenation, and
    fixpoint rounds for unbounded repetition.
    """

    triples_produced: int = 0
    join_checks: int = 0
    fixpoint_rounds: int = 0
    condition_checks: int = 0

    def total_operations(self) -> int:
        return (
            self.triples_produced
            + self.join_checks
            + self.fixpoint_rounds
            + self.condition_checks
        )


class _OracleMeter:
    """Watermark checkpointing for the oracle's enumeration loops.

    Counts iterations and polls the governor every :data:`CHECK_INTERVAL`
    ticks at the ``"oracle.enumerate"`` site; :meth:`flush` reports the
    remainder so small graphs still exercise the checkpoint (which is what
    the fault-injection harness asserts).  The oracle trades speed for
    obviousness, so a bound-method call per iteration is acceptable; with
    governance off the evaluator hands out the shared null meter instead.
    """

    __slots__ = ("_governor", "_count", "_checked")

    def __init__(self, governor):
        self._governor = governor
        self._count = 0
        self._checked = 0

    def tick(self) -> None:
        self._count += 1
        if self._count - self._checked >= CHECK_INTERVAL:
            self._governor.checkpoint("oracle.enumerate", self._count - self._checked)
            self._checked = self._count

    def flush(self) -> None:
        if self._count > self._checked:
            self._governor.checkpoint("oracle.enumerate", self._count - self._checked)


class _NullMeter:
    """No-governor stand-in so enumeration loops stay branch-free."""

    __slots__ = ()

    def tick(self) -> None:
        pass

    def flush(self) -> None:
        pass


_NULL_METER = _NullMeter()


class EndpointEvaluator:
    """Evaluates patterns under the endpoint semantics of Figure 2."""

    def __init__(
        self,
        graph: PropertyGraph,
        *,
        counters: Optional[EvaluationCounters] = None,
        max_repetitions: Optional[int] = None,
    ):
        self.graph = graph
        self.counters = counters if counters is not None else EvaluationCounters()
        #: Resource guard: when set, a repetition whose matches need more
        #: than this many body iterations raises :class:`PatternError`.
        #: ``None`` keeps the paper's semantics (saturation always
        #: terminates within ``|N|`` rounds, Corollary 6.4).  The guarded
        #: kernels are shared with the planner (:mod:`repro.matching.fixpoint`).
        self.max_repetitions = max_repetitions

    def _count_round(self) -> None:
        self.counters.fixpoint_rounds += 1
        governor = current_governor()
        if governor is not None:
            governor.checkpoint("fixpoint.round")

    @staticmethod
    def _meter():
        governor = current_governor()
        return _OracleMeter(governor) if governor is not None else _NULL_METER

    # ------------------------------------------------------------------ #
    # Pattern semantics
    # ------------------------------------------------------------------ #
    def evaluate(self, pattern: Pattern) -> MatchSet:
        """Compute ``[[pattern]]_G`` as a set of (s, t, frozen mapping) triples."""
        pattern.validate()
        return self._eval(pattern)

    def _eval(self, pattern: Pattern) -> MatchSet:
        if isinstance(pattern, NodePattern):
            return self._eval_node(pattern)
        if isinstance(pattern, EdgePattern):
            return self._eval_edge(pattern)
        if isinstance(pattern, Concatenation):
            return self._eval_concatenation(pattern)
        if isinstance(pattern, Disjunction):
            return self._eval_disjunction(pattern)
        if isinstance(pattern, Filter):
            return self._eval_filter(pattern)
        if isinstance(pattern, Repetition):
            return self._eval_repetition(pattern)
        raise PatternError(f"unknown pattern node {pattern!r}")

    def _eval_node(self, pattern: NodePattern) -> MatchSet:
        triples = set()
        meter = self._meter()
        for node in self.graph.nodes:
            mapping = {pattern.variable: node} if pattern.variable else {}
            triples.add((node, node, freeze(mapping)))
            self.counters.triples_produced += 1
            meter.tick()
        meter.flush()
        return frozenset(triples)

    def _eval_edge(self, pattern: EdgePattern) -> MatchSet:
        triples = set()
        meter = self._meter()
        for edge in self.graph.edge_tuples():
            mapping = {pattern.variable: edge.ident} if pattern.variable else {}
            if pattern.forward:
                triples.add((edge.source, edge.target, freeze(mapping)))
            else:
                triples.add((edge.target, edge.source, freeze(mapping)))
            self.counters.triples_produced += 1
            meter.tick()
        meter.flush()
        return frozenset(triples)

    def _eval_concatenation(self, pattern: Concatenation) -> MatchSet:
        left = self._eval(pattern.left)
        right = self._eval(pattern.right)
        # Index the right matches by their source node so composition is a
        # hash join on the shared midpoint rather than a nested loop.
        by_source: Dict[Identifier, List[MatchTriple]] = {}
        for triple in right:
            by_source.setdefault(triple[0], []).append(triple)
        triples = set()
        meter = self._meter()
        for (source, midpoint, left_frozen) in left:
            left_mapping = thaw(left_frozen)
            for (_mid, target, right_frozen) in by_source.get(midpoint, ()):
                self.counters.join_checks += 1
                meter.tick()
                right_mapping = thaw(right_frozen)
                if compatible(left_mapping, right_mapping):
                    merged = union(left_mapping, right_mapping)
                    triples.add((source, target, freeze(merged)))
                    self.counters.triples_produced += 1
        meter.flush()
        return frozenset(triples)

    def _eval_disjunction(self, pattern: Disjunction) -> MatchSet:
        return self._eval(pattern.left) | self._eval(pattern.right)

    def _eval_filter(self, pattern: Filter) -> MatchSet:
        matches = self._eval(pattern.body)
        triples = set()
        meter = self._meter()
        for (source, target, frozen) in matches:
            self.counters.condition_checks += 1
            meter.tick()
            if pattern.condition.satisfied(self.graph, thaw(frozen)):
                triples.add((source, target, frozen))
        meter.flush()
        return frozenset(triples)

    def _eval_repetition(self, pattern: Repetition) -> MatchSet:
        body = self._eval(pattern.body)
        # The repetition semantics forgets bindings (mu_emptyset), so only
        # the endpoint-pair relation of the body matters.
        base_pairs: Set[Tuple[Identifier, Identifier]] = {(s, t) for (s, t, _mu) in body}
        empty = freeze(EMPTY_MAPPING)

        identity_pairs = {(node, node) for node in self.graph.nodes}

        if pattern.is_unbounded:
            pairs = self._pairs_at_least(base_pairs, pattern.lower, identity_pairs)
        else:
            pairs = self._pairs_bounded(
                base_pairs, pattern.lower, int(pattern.upper), identity_pairs
            )
        self.counters.triples_produced += len(pairs)
        return frozenset((source, target, empty) for (source, target) in pairs)

    # ------------------------------------------------------------------ #
    # Pair-relation helpers for repetition
    # ------------------------------------------------------------------ #
    def _pairs_bounded(
        self,
        base: Set[Tuple[Identifier, Identifier]],
        lower: int,
        upper: int,
        identity: Set[Tuple[Identifier, Identifier]],
    ) -> Set[Tuple[Identifier, Identifier]]:
        """Endpoint pairs of ``psi^{lower..upper}`` for finite bounds."""
        return fixpoint.bounded_pairs(
            fixpoint.adjacency_of(base),
            lower,
            upper,
            identity,
            max_repetitions=self.max_repetitions,
            on_round=self._count_round,
        )

    def _pairs_at_least(
        self,
        base: Set[Tuple[Identifier, Identifier]],
        lower: int,
        identity: Set[Tuple[Identifier, Identifier]],
    ) -> Set[Tuple[Identifier, Identifier]]:
        """Endpoint pairs of ``psi^{lower..inf}``.

        Computed as (pairs for exactly ``lower`` repetitions) composed with
        the reflexive-transitive closure of the base pair relation.  When a
        ``max_repetitions`` bound is configured, the shared delta-iteration
        kernel runs instead so the depth at which each pair is first
        derivable is known and the bound check is exact (and agrees with
        the planner's fixpoint operator by construction).
        """
        if self.max_repetitions is not None:
            return fixpoint.unbounded_pairs_delta(
                fixpoint.adjacency_of(base),
                lower,
                identity,
                max_repetitions=self.max_repetitions,
                on_round=self._count_round,
            )
        adjacency = fixpoint.adjacency_of(base)
        exact_lower = set(identity)
        for _ in range(lower):
            exact_lower = fixpoint.compose(exact_lower, adjacency)
            self._count_round()
            if not exact_lower:
                return set()
        closure = self._reflexive_transitive_closure(adjacency)
        return self._compose_with_closure(exact_lower, closure)

    def _reflexive_transitive_closure(
        self, adjacency: Dict[Identifier, List[Identifier]]
    ) -> Dict[Identifier, Set[Identifier]]:
        """Reachability map of the base pair relation, including 0 steps.

        Semi-naive iteration: each round only extends from newly discovered
        targets, so the work is proportional to the closure size.
        """
        reachable: Dict[Identifier, Set[Identifier]] = {}
        nodes = set(self.graph.nodes) | set(adjacency)
        for start in nodes:
            seen: Set[Identifier] = {start}
            frontier = [start]
            while frontier:
                self._count_round()
                next_frontier = []
                for node in frontier:
                    for successor in adjacency.get(node, ()):
                        if successor not in seen:
                            seen.add(successor)
                            next_frontier.append(successor)
                frontier = next_frontier
            reachable[start] = seen
        return reachable

    @staticmethod
    def _compose_with_closure(
        pairs: Set[Tuple[Identifier, Identifier]],
        closure: Dict[Identifier, Set[Identifier]],
    ) -> Set[Tuple[Identifier, Identifier]]:
        result = set()
        for (source, midpoint) in pairs:
            for target in closure.get(midpoint, {midpoint}):
                result.add((source, target))
        return result

    # ------------------------------------------------------------------ #
    # Output patterns
    # ------------------------------------------------------------------ #
    def evaluate_output(self, output: OutputPattern) -> FrozenSet[Tuple]:
        """``[[psi_Omega]]_G``: tuples of identifiers / property values.

        Unary identifiers are unwrapped to plain values so results line up
        with the relational layer; n-ary identifiers are flattened into the
        output tuple (the extended semantics of Section 5, where outputs are
        k-tuples per identifier component group).
        """
        output.validate()
        matches = self._eval(output.pattern)
        rows: Set[Tuple] = set()
        meter = self._meter()
        for (_source, _target, frozen) in matches:
            meter.tick()
            mapping = thaw(frozen)
            row: List = []
            defined = True
            for item in output.items:
                if isinstance(item, PropertyRef):
                    element = mapping.get(item.variable)
                    if element is None or not self.graph.has_property(element, item.key):
                        defined = False
                        break
                    row.append(self.graph.property(element, item.key))
                else:
                    element = mapping.get(item)
                    if element is None:
                        defined = False
                        break
                    row.extend(element)
            if defined:
                rows.add(tuple(row))
        meter.flush()
        return frozenset(rows)


def evaluate_pattern(graph: PropertyGraph, pattern: Pattern) -> MatchSet:
    """Convenience wrapper: ``[[pattern]]_G`` with a fresh evaluator."""
    return EndpointEvaluator(graph).evaluate(pattern)


def evaluate_output_pattern(graph: PropertyGraph, output: OutputPattern) -> FrozenSet[Tuple]:
    """Convenience wrapper: ``[[psi_Omega]]_G`` with a fresh evaluator."""
    return EndpointEvaluator(graph).evaluate_output(output)
