"""Shared pair-relation fixpoint kernels for repetition operators.

Both pattern-matching backends — the naive oracle
(:class:`~repro.matching.endpoint.EndpointEvaluator`) and the planner's
:class:`~repro.planner.physical.PlanExecutor` — evaluate repetition on the
body's endpoint-pair relation.  The depth-guarded kernels live here once,
so the ``max_repetitions`` error behavior cannot drift between engines:

* :func:`bounded_pairs` — ``psi^{lower..upper}`` for finite bounds;
* :func:`unbounded_pairs_delta` — ``psi^{lower..inf}`` by frontier-based
  semi-naive delta iteration (each round extends only the pairs first
  derived in the previous round).

The guard fires exactly when a *match* would need more than
``max_repetitions`` body iterations: a pair first reaching a valid depth
(``>= lower``) at some depth beyond the bound.  Re-deriving known matches
around a cycle is not new work and must not raise, and pairs below the
pattern's lower bound are not matches yet.  Both kernels apply the same
rule, so tightening ``psi^{n..inf}`` to ``psi^{n..m}`` (or vice versa)
never flips the error behavior.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import PatternError
from repro.graph.identifiers import Identifier

#: A pair of path endpoints.
Pair = Tuple[Identifier, Identifier]
#: The body pair relation as an adjacency map (source -> targets).
Adjacency = Dict[Identifier, Sequence[Identifier]]

#: Round callback: invoked once per composition round (instrumentation).
OnRound = Optional[Callable[[], None]]


def adjacency_of(pairs) -> Adjacency:
    """Index a pair set by source, for repeated composition."""
    adjacency: Dict[Identifier, List[Identifier]] = {}
    for (source, target) in pairs:
        adjacency.setdefault(source, []).append(target)
    return adjacency


def compose(pairs: Set[Pair], adjacency: Adjacency) -> Set[Pair]:
    """One composition step: ``pairs . body`` (relational composition)."""
    return {
        (source, successor)
        for (source, midpoint) in pairs
        for successor in adjacency.get(midpoint, ())
    }


def check_depth(depth: int, produced: bool, max_repetitions: Optional[int]) -> None:
    """Raise when matches require more body repetitions than allowed."""
    if produced and max_repetitions is not None and depth > max_repetitions:
        raise PatternError(
            f"repetition requires more than max_repetitions={max_repetitions} "
            f"iterations of its body (matches exist at depth {depth})"
        )


def bounded_pairs(
    adjacency: Adjacency,
    lower: int,
    upper: int,
    identity: Set[Pair],
    *,
    max_repetitions: Optional[int] = None,
    on_round: OnRound = None,
) -> Set[Pair]:
    """Endpoint pairs of ``psi^{lower..upper}`` for finite bounds."""
    result: Set[Pair] = set()
    current = set(identity)  # pairs for exactly 0 repetitions
    for count in range(0, upper + 1):
        if count >= lower:
            result |= current
        if count < upper:
            current = compose(current, adjacency)
            if on_round is not None:
                on_round()
            # ``result`` holds every match found so far, so a pair beyond
            # it at a valid depth is a match first reachable here.
            depth = count + 1
            check_depth(depth, depth >= lower and not current <= result, max_repetitions)
            if not current:
                break
    return result


def unbounded_pairs_delta(
    adjacency: Adjacency,
    lower: int,
    identity: Set[Pair],
    *,
    max_repetitions: Optional[int] = None,
    on_round: OnRound = None,
    on_delta: Optional[Callable[[int], None]] = None,
) -> Set[Pair]:
    """Endpoint pairs of ``psi^{lower..inf}`` by semi-naive iteration.

    ``exact`` holds the pairs for exactly ``lower`` repetitions; the
    fixpoint then only composes the newly discovered delta with the body
    relation each round, so the total work is proportional to the closure
    size times the average out-degree, not (rounds) x (closure size).
    """
    exact = set(identity)
    for depth in range(1, lower + 1):
        exact = compose(exact, adjacency)
        if on_round is not None:
            on_round()
        # Pairs below ``lower`` are not matches yet; only the pairs that
        # complete the prefix (depth == lower) can trip the guard.
        check_depth(depth, depth >= lower and bool(exact), max_repetitions)
        if not exact:
            return set()
    result: Set[Pair] = set(exact)
    delta = exact
    depth = lower
    while delta:
        depth += 1
        if on_round is not None:
            on_round()
        fresh: Set[Pair] = set()
        for (source, midpoint) in delta:
            for successor in adjacency.get(midpoint, ()):
                pair = (source, successor)
                if pair not in result:
                    result.add(pair)
                    fresh.add(pair)
        check_depth(depth, bool(fresh), max_repetitions)
        if on_delta is not None:
            on_delta(len(fresh))
        delta = fresh
    return result
