"""Pattern matching semantics: endpoint (Fig. 2) and path (Fig. 6) semantics."""

from repro.matching.endpoint import (
    EndpointEvaluator,
    EvaluationCounters,
    MatchSet,
    MatchTriple,
    evaluate_output_pattern,
    evaluate_pattern,
)
from repro.matching.mappings import (
    EMPTY_MAPPING,
    Mapping,
    compatible,
    domain,
    freeze,
    join,
    restrict,
    thaw,
    union,
)
from repro.matching.paths import (
    Path,
    PathEvaluator,
    PathMatch,
    PathMatchSet,
    endpoint_path_equivalent,
    project_endpoints,
)

__all__ = [
    "EMPTY_MAPPING",
    "EndpointEvaluator",
    "EvaluationCounters",
    "Mapping",
    "MatchSet",
    "MatchTriple",
    "Path",
    "PathEvaluator",
    "PathMatch",
    "PathMatchSet",
    "compatible",
    "domain",
    "endpoint_path_equivalent",
    "evaluate_output_pattern",
    "evaluate_pattern",
    "freeze",
    "join",
    "project_endpoints",
    "restrict",
    "thaw",
    "union",
]
