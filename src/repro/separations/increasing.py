"""Increasing-amount transfer paths via composite identifiers (Example 5.3).

The query "find all pairs of accounts connected by a non-empty path of
transfers whose amounts strictly increase along the path" is not
expressible in the pattern-matching layer alone (shown in [GLPR25], cited
as [13] in the paper).  Example 5.3 expresses it in PGQext by *view
construction*: every account is copied once per incoming amount (plus a
zero-amount base copy), node identifiers become ``(iban, amount)`` pairs,
and edges connect copies only when the amount strictly increases.  Plain
reachability on the constructed graph then answers the original question.

This module builds that PGQext query over the Example 1.1 schema
(``Account(iban)``, ``Transfer(t_id, src, tgt, ts, amount)``) and provides
a direct reference implementation used for validation.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.patterns.builder import nonempty_reachability
from repro.pgq.queries import (
    BaseRelation,
    Constant,
    EmptyRelation,
    GraphPattern,
    Product,
    Project,
    Query,
    Select,
    Union,
)
from repro.relational.conditions import ColumnCompare, ColumnEquals, conjoin
from repro.relational.database import Database

#: Sentinel amount assigned to the base copy of every account.  Transfers
#: are generated with positive amounts, so the base copy can start any
#: increasing path.
BASE_AMOUNT = 0


def account_copies_query(
    *, account_relation: str = "Account", transfer_relation: str = "Transfer"
) -> Query:
    """Node identifiers of the constructed graph: ``(iban, amount)`` copies.

    One copy per incoming transfer amount, plus the ``(iban, BASE_AMOUNT)``
    base copy for every account (so paths can start at accounts with no
    incoming transfer).
    """
    transfers = BaseRelation(transfer_relation)
    incoming = Project(transfers, (3, 5))
    base = Product(BaseRelation(account_relation), Constant(BASE_AMOUNT, require_active=False))
    return Union(incoming, base)


def increasing_view_sources(
    *, account_relation: str = "Account", transfer_relation: str = "Transfer"
) -> Tuple[Query, Query, Query, Query, Query, Query]:
    """The six view subqueries of the Example 5.3 construction.

    A transfer ``t = (t_id, src, tgt, ts, amount)`` induces, for every copy
    ``(src, l)`` of its source with ``l < amount``, an edge

        (t_id, l) : (src, l) -> (tgt, amount)

    so any path in the constructed graph follows strictly increasing
    amounts by construction -- no filter is needed at query time, which is
    the point of the example.
    """
    transfers = BaseRelation(transfer_relation)
    copies = account_copies_query(
        account_relation=account_relation, transfer_relation=transfer_relation
    )
    # Join transfers with the source-account copies: columns
    # (t_id, src, tgt, ts, amount, copy_acct, copy_amount).
    joined = Select(
        Product(transfers, copies),
        conjoin((ColumnEquals(2, 6), ColumnCompare(7, "<", 5))),
    )
    edges = Project(joined, (1, 7))
    sources = Project(joined, (1, 7, 2, 7))
    targets = Project(joined, (1, 7, 3, 5))
    return (
        copies,
        edges,
        sources,
        targets,
        EmptyRelation(3),
        EmptyRelation(4),
    )


def increasing_amount_pairs_query(
    *, account_relation: str = "Account", transfer_relation: str = "Transfer"
) -> Query:
    """Pairs of accounts connected by a strictly-increasing transfer path.

    The reachability pattern runs on the constructed graph; its rows are
    ``(src_iban, src_amount, tgt_iban, tgt_amount)`` and the final
    projection keeps the two account columns.
    """
    view = increasing_view_sources(
        account_relation=account_relation, transfer_relation=transfer_relation
    )
    reach = GraphPattern(nonempty_reachability("x", "y"), view)
    return Project(reach, (1, 3))


def increasing_amount_pairs_reference(
    database: Database, *, transfer_relation: str = "Transfer"
) -> FrozenSet[Tuple[str, str]]:
    """Ground truth: depth-first enumeration of increasing-amount paths.

    A pair ``(a, b)`` is included when a non-empty sequence of transfers
    leads from ``a`` to ``b`` with strictly increasing amounts.  The search
    state is ``(account, last_amount)``; since amounts strictly increase the
    search terminates without an explicit visited set, but one is kept to
    stay polynomial.
    """
    transfers = database.relation(transfer_relation).rows
    outgoing = {}
    for (t_id, src, tgt, _ts, amount) in transfers:
        outgoing.setdefault(src, []).append((amount, tgt))
    result = set()
    accounts = {src for (_t, src, _tgt, _ts, _a) in transfers} | {
        tgt for (_t, _src, tgt, _ts, _a) in transfers
    }
    for start in accounts:
        seen_states = set()
        stack = [(start, BASE_AMOUNT)]
        while stack:
            (current, last_amount) = stack.pop()
            for (amount, target) in outgoing.get(current, ()):
                if amount > last_amount:
                    result.add((start, target))
                    state = (target, amount)
                    if state not in seen_states:
                        seen_states.add(state)
                        stack.append(state)
    return frozenset(result)
