"""The PGQro vs PGQrw separation: alternating-colour paths (Theorem 4.1).

The database schema is the coloured-graph schema of Appendix 9.2
(``RedNodes``, ``BlueNodes``, ``Edges``, ``Source``, ``Target``).  The
Boolean query "is there an alternating red-blue path of unbounded length?"
is expressible in PGQrw -- by first materializing the union view whose node
set is ``RedNodes ∪ BlueNodes`` -- but not in PGQro, because on this schema
no tuple of base relations forms a valid property graph view (Proposition
9.2) and plain relational algebra is local (Gaifman), hence bounded-radius.

This module provides the PGQrw separating query, the family of bounded
PGQro queries (alternating path of length exactly/at most ``k``), and a
direct reference checker; the E2 benchmark sweeps chain lengths to exhibit
the crossover where every fixed read-only query fails.
"""

from __future__ import annotations

from typing import Tuple

from repro.patterns.builder import label, node, edge, output, seq, where
from repro.pgq.queries import (
    BaseRelation,
    EmptyRelation,
    GraphPattern,
    Project,
    Query,
    Select,
    Union,
)
from repro.relational.conditions import ColumnEquals, conjoin
from repro.relational.database import Database


def union_view_sources(
    *,
    red: str = "RedNodes",
    blue: str = "BlueNodes",
    edges: str = "Edges",
    source: str = "Source",
    target: str = "Target",
) -> Tuple[Query, Query, Query, Query, Query, Query]:
    """The six view subqueries of the PGQrw construction.

    Nodes are ``RedNodes ∪ BlueNodes`` (the step that is impossible in the
    read-only fragment), edges/source/target come straight from the base
    relations, labels are derived from the colour relations, and the
    property relation is empty.
    """
    nodes = Union(BaseRelation(red), BaseRelation(blue))
    labels = Union(
        _with_constant_label(BaseRelation(red), red),
        _with_constant_label(BaseRelation(blue), blue),
    )
    return (
        nodes,
        BaseRelation(edges),
        BaseRelation(source),
        BaseRelation(target),
        labels,
        EmptyRelation(3),
    )


def _with_constant_label(relation: Query, label_value: str) -> Query:
    """``{(n, label) | n in relation}`` via product with a constant."""
    from repro.pgq.queries import Constant, Product

    return Product(relation, Constant(label_value, require_active=False))


def alternating_path_query_rw(minimum_segments: int = 1) -> Query:
    """The PGQrw separating query of Theorem 4.1.

    One *segment* is the filtered two-edge pattern
    ``((x) -> (y) -> (z)) <Red(x) ∧ Blue(y) ∧ Red(z)>``; repeating it at
    least once detects an alternating path with at least two edges, of any
    length.  The query is Boolean (empty output tuple).
    """
    segment = where(
        seq(node("x"), edge(), node("y"), edge(), node("z")),
        label("x", "RedNodes") & label("y", "BlueNodes") & label("z", "RedNodes"),
    )
    from repro.patterns.ast import INFINITY, Repetition

    pattern = Repetition(segment, max(minimum_segments, 1), INFINITY)
    return GraphPattern(output(pattern), union_view_sources())


def alternating_path_query_ro(length: int) -> Query:
    """A read-only query detecting an alternating path of length exactly ``length``.

    Built purely in relational algebra over the base relations (no pattern
    matching, no view construction), by joining ``length`` copies of the
    edge relation and checking the colours along the way.  Its radius is
    fixed by ``length``; Gaifman locality is why no single such query works
    for all lengths.  The result is Boolean-style: non-empty iff such a path
    exists.
    """
    if length < 1:
        raise ValueError("path length must be >= 1")
    # Hop relation: (source_node, target_node) pairs joined from Source/Target.
    hop = Project(
        Select(
            # columns: (edge, src, edge, tgt)
            _product(BaseRelation("Source"), BaseRelation("Target")),
            ColumnEquals(1, 3),
        ),
        (2, 4),
    )
    query: Query = hop
    for _ in range(length - 1):
        # columns of query: (n0, n_i); extend with one more hop.
        query = Project(
            Select(_product(query, hop), ColumnEquals(2, 3)),
            (1, 4),
        )
    # Check the endpoints' colours alternate starting and ending at red when
    # the length is even, and red -> blue when it is odd; for the separation
    # experiment only existence matters, so we simply require the start to be
    # red and the parity-appropriate colour at the end.
    end_colour = "RedNodes" if length % 2 == 0 else "BlueNodes"
    constrained = Select(
        _product(_product(query, BaseRelation("RedNodes")), BaseRelation(end_colour)),
        conjoin((ColumnEquals(1, 3), ColumnEquals(2, 4))),
    )
    return Project(constrained, (1, 2))


def _product(left: Query, right: Query) -> Query:
    from repro.pgq.queries import Product

    return Product(left, right)


def has_alternating_path_reference(database: Database, minimum_edges: int = 2) -> bool:
    """Direct reference check: is there an alternating path with >= ``minimum_edges`` edges?

    Used as ground truth in tests and benchmarks.  Walks the coloured graph
    with a breadth-first search over (node, parity) states, which is the
    NL-style algorithm the query languages are compared against.
    """
    red = {row[0] for row in database.relation("RedNodes").rows}
    blue = {row[0] for row in database.relation("BlueNodes").rows}
    sources = {row[0]: row[1] for row in database.relation("Source").rows}
    targets = {row[0]: row[1] for row in database.relation("Target").rows}
    adjacency = {}
    for edge_id, source in sources.items():
        target = targets.get(edge_id)
        if target is not None:
            adjacency.setdefault(source, set()).add(target)

    def colour(node: str) -> str:
        return "red" if node in red else "blue" if node in blue else "none"

    best = 0
    for start in red | blue:
        # longest alternating walk length from start (bounded by node count,
        # since alternation forbids immediate colour repetition but allows
        # revisits; we cap the search at the number of nodes + 1 edges).
        cap = len(red | blue) + 1
        frontier = {(start, 0)}
        seen = set(frontier)
        while frontier:
            next_frontier = set()
            for (current, length) in frontier:
                if length >= cap:
                    continue
                for successor in adjacency.get(current, ()):
                    if colour(successor) != colour(current) and colour(successor) != "none":
                        state = (successor, length + 1)
                        best = max(best, length + 1)
                        if best >= minimum_edges:
                            return True
                        if state not in seen:
                            seen.add(state)
                            next_frontier.add(state)
            frontier = next_frontier
    return best >= minimum_edges
