"""The PGQrw vs NL separation: non-semilinear path-length sets (Theorem 4.2).

The proof observes that the sets of path lengths detectable by PGQrw
queries are definable in Presburger arithmetic and therefore semilinear
(finite unions of arithmetic progressions), whereas NL can decide
properties such as "there is a path whose length is a perfect square",
whose length set is not semilinear.

This module makes that argument executable:

* :func:`path_length_set` computes the set of path lengths between nodes of
  a graph-view database up to a bound (an NL-style dynamic program);
* :func:`is_eventually_periodic` tests whether a finite length set is
  consistent with a semilinear (eventually periodic) set on the observed
  window, and :func:`best_period` reports the smallest witnessing period;
* :func:`square_length_path_exists` is the NL query of the proof;
* :func:`rw_detectable_length_sets` enumerates the length sets of a natural
  family of PGQrw repetition queries (``length >= n``, ``length ≡ r mod m``
  and finite unions thereof), all of which are semilinear by construction.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.relational.database import Database


def _adjacency(database: Database) -> Dict[str, Set[str]]:
    sources = {row[0]: row[1] for row in database.relation("S").rows}
    targets = {row[0]: row[1] for row in database.relation("T").rows}
    adjacency: Dict[str, Set[str]] = {}
    for edge_id, source in sources.items():
        target = targets.get(edge_id)
        if target is not None:
            adjacency.setdefault(source, set()).add(target)
    return adjacency


def path_length_set(
    database: Database,
    source: Optional[str] = None,
    target: Optional[str] = None,
    *,
    bound: int = 64,
) -> FrozenSet[int]:
    """All path lengths up to ``bound`` between the given endpoints.

    ``None`` endpoints are wildcards.  The computation is a layered
    breadth-first dynamic program over (node, length) states, the standard
    NL-style algorithm: its working memory is one bit per (node, length)
    pair, logarithmic counters only.
    """
    adjacency = _adjacency(database)
    nodes = {row[0] for row in database.relation("N").rows}
    starts = {source} if source is not None else set(nodes)
    lengths: Set[int] = set()
    current: Set[Tuple[str, str]] = {(s, s) for s in starts}
    for length in range(0, bound + 1):
        for (start, node) in current:
            if target is None or node == target:
                lengths.add(length)
        next_states = {
            (start, successor)
            for (start, node) in current
            for successor in adjacency.get(node, ())
        }
        current = next_states
        if not current:
            break
    return frozenset(lengths)


def is_eventually_periodic(lengths: Iterable[int], *, bound: int, max_period: int = 12) -> bool:
    """Whether the observed length set looks eventually periodic on [0, bound].

    A set is semilinear iff it is eventually periodic; on a finite window we
    check that some period ``p <= max_period`` and threshold ``t`` exist such
    that membership of ``l`` and ``l + p`` agree for all ``t <= l <= bound - p``.
    """
    return best_period(lengths, bound=bound, max_period=max_period) is not None


def best_period(
    lengths: Iterable[int], *, bound: int, max_period: int = 12
) -> Optional[Tuple[int, int]]:
    """Smallest ``(period, threshold)`` witnessing eventual periodicity, if any."""
    members = {l for l in lengths if 0 <= l <= bound}
    # Thresholds are limited to the first half of the window so the periodic
    # tail is checked on a non-trivial suffix; otherwise every set looks
    # "eventually periodic" once the window runs out of members.
    for period in range(1, max_period + 1):
        for threshold in range(0, bound // 2 + 1):
            consistent = all(
                ((l in members) == ((l + period) in members))
                for l in range(threshold, bound - period + 1)
            )
            if consistent:
                return (period, threshold)
    return None


def square_lengths(bound: int) -> FrozenSet[int]:
    """The perfect squares up to ``bound`` — a canonical non-semilinear set."""
    return frozenset(i * i for i in range(0, int(math.isqrt(bound)) + 1) if i * i <= bound)


def square_length_path_exists(
    database: Database,
    source: Optional[str] = None,
    target: Optional[str] = None,
    *,
    bound: int = 64,
) -> bool:
    """The NL query of Theorem 4.2: is some path length a (positive) perfect square?"""
    lengths = path_length_set(database, source, target, bound=bound)
    return any(length in square_lengths(bound) and length > 0 for length in lengths)


def rw_detectable_length_sets(*, bound: int, max_modulus: int = 6) -> Dict[str, FrozenSet[int]]:
    """Length sets of a natural family of PGQrw repetition queries.

    Each entry is the set of path lengths accepted by one query shape
    expressible with bounded/unbounded repetition of the single-edge
    pattern: ``length >= n`` (Kleene-style), ``length in [n, m]`` and
    ``length ≡ r (mod m)`` realized by repeating an ``m``-edge block.  All of
    them are semilinear, matching the Presburger argument of the proof.
    """
    sets: Dict[str, FrozenSet[int]] = {}
    for lower in range(0, 5):
        sets[f"length>={lower}"] = frozenset(range(lower, bound + 1))
    for lower in range(0, 4):
        for upper in range(lower, lower + 4):
            sets[f"length in [{lower},{upper}]"] = frozenset(range(lower, min(upper, bound) + 1))
    for modulus in range(2, max_modulus + 1):
        for residue in range(modulus):
            sets[f"length ≡ {residue} (mod {modulus})"] = frozenset(
                l for l in range(0, bound + 1) if l % modulus == residue
            )
    return sets


def squares_not_rw_detectable(*, bound: int, max_modulus: int = 6) -> bool:
    """No query in the PGQrw family has exactly the perfect-square length set.

    This is the finite-window shadow of Theorem 4.2: every semilinear set
    disagrees with the squares once the window is large enough.
    """
    squares = frozenset(l for l in square_lengths(bound) if l > 0)
    return all(
        candidate != squares for candidate in rw_detectable_length_sets(bound=bound, max_modulus=max_modulus).values()
    )
