"""The PGQrw vs PGQext separation: reachability over node pairs (Theorem 5.2).

The separating query is pair reachability: given a 4-ary relation
``E4(u1, u2, v1, v2)`` describing steps between *pairs* of values, decide
which pairs reach which.  It is definable with a binary transitive closure
(FO[TC_2]) and hence in PGQ_2 ⊆ PGQext, but not in FO[TC_1] = PGQrw
(Graedel-McColm / Immerman).

The PGQext query below materializes a property graph whose node identifiers
are the pairs themselves (padded to arity 4 as in Lemma 9.4 so nodes and
edges share one arity) and runs the plain reachability pattern.  The unary
"approximations" are the natural things a PGQrw query could try -- tracking
each component independently -- and the experiment shows they disagree with
the true answer on concrete instances.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.patterns.builder import reachability
from repro.pgq.queries import (
    BaseRelation,
    EmptyRelation,
    GraphPattern,
    Project,
    Query,
    Select,
    Union,
)
from repro.relational.conditions import And as RAAnd, ColumnEquals, Not as RANot
from repro.relational.database import Database


def pair_reachability_query(edge_relation: str = "E4") -> Query:
    """PGQext query returning all ``(x1, x2, y1, y2)`` with ``(x1,x2) ->* (y1,y2)``.

    Node identifiers are duplicated pairs ``(w1, w2, w1, w2)``; edge
    identifiers are the 4-tuples of ``E4`` (self-loops dropped to keep node
    and edge identifiers disjoint, condition (1) of Definition 5.1).  The
    result includes the reflexive pairs present in the graph.
    """
    edges_base = BaseRelation(edge_relation)
    not_loop = RANot(RAAnd(ColumnEquals(1, 3), ColumnEquals(2, 4)))
    proper = Select(edges_base, not_loop)
    edge_ids = proper
    node_ids = Union(Project(proper, (1, 2, 1, 2)), Project(proper, (3, 4, 3, 4)))
    source_map = Project(proper, (1, 2, 3, 4, 1, 2, 1, 2))
    target_map = Project(proper, (1, 2, 3, 4, 3, 4, 3, 4))
    view = (
        node_ids,
        edge_ids,
        source_map,
        target_map,
        EmptyRelation(5),
        EmptyRelation(6),
    )
    reach = GraphPattern(reachability("x", "y"), view)
    # Rows are (x1, x2, x1, x2, y1, y2, y1, y2); keep one copy of each pair.
    return Project(reach, (1, 2, 5, 6))


def pair_reachability_reference(database: Database, edge_relation: str = "E4") -> FrozenSet[Tuple]:
    """Ground-truth pair reachability via breadth-first search.

    Includes the reflexive pairs for every pair that occurs in the edge
    relation (matching the query above, which ranges over graph nodes).
    """
    rows = database.relation(edge_relation).rows
    adjacency = {}
    nodes = set()
    for (u1, u2, v1, v2) in rows:
        nodes.add((u1, u2))
        nodes.add((v1, v2))
        if (u1, u2) != (v1, v2):
            adjacency.setdefault((u1, u2), set()).add((v1, v2))
    result = set()
    for start in nodes:
        seen = {start}
        frontier = [start]
        while frontier:
            next_frontier = []
            for current in frontier:
                for successor in adjacency.get(current, ()):
                    if successor not in seen:
                        seen.add(successor)
                        next_frontier.append(successor)
            frontier = next_frontier
        for end in seen:
            result.add(start + end)
    return frozenset(result)


def componentwise_approximation(database: Database, edge_relation: str = "E4") -> FrozenSet[Tuple]:
    """A unary-identifier (PGQrw-style) approximation of pair reachability.

    Each component is tracked in its own unary graph: the first components
    of the pairs form one graph, the second components another, and a pair
    ``(x1, x2)`` is declared to reach ``(y1, y2)`` when ``x1`` reaches ``y1``
    in the first graph and ``x2`` reaches ``y2`` in the second.  This is the
    natural best effort with unary identifiers and over-approximates the
    true answer -- the E4 instances in the benchmark exhibit the gap, which
    is the executable face of Theorem 5.2.
    """
    rows = database.relation(edge_relation).rows
    first_adj, second_adj = {}, {}
    firsts, seconds, nodes = set(), set(), set()
    for (u1, u2, v1, v2) in rows:
        nodes.add((u1, u2))
        nodes.add((v1, v2))
        firsts.update((u1, v1))
        seconds.update((u2, v2))
        first_adj.setdefault(u1, set()).add(v1)
        second_adj.setdefault(u2, set()).add(v2)

    def closure(adjacency, starts):
        reach = {}
        for start in starts:
            seen = {start}
            frontier = [start]
            while frontier:
                nxt = []
                for cur in frontier:
                    for suc in adjacency.get(cur, ()):
                        if suc not in seen:
                            seen.add(suc)
                            nxt.append(suc)
                frontier = nxt
            reach[start] = seen
        return reach

    first_reach = closure(first_adj, firsts)
    second_reach = closure(second_adj, seconds)
    result = set()
    for (x1, x2) in nodes:
        for (y1, y2) in nodes:
            if y1 in first_reach.get(x1, {x1}) and y2 in second_reach.get(x2, {x2}):
                result.add((x1, x2, y1, y2))
    return frozenset(result)


def approximation_gap(database: Database, edge_relation: str = "E4") -> int:
    """Number of pairs the unary approximation wrongly declares reachable."""
    truth = pair_reachability_reference(database, edge_relation)
    approx = componentwise_approximation(database, edge_relation)
    return len(approx - truth)
