"""Executable separating queries from the paper's proofs (Sections 4 and 5)."""

from repro.separations.alternating import (
    alternating_path_query_ro,
    alternating_path_query_rw,
    has_alternating_path_reference,
    union_view_sources,
)
from repro.separations.increasing import (
    BASE_AMOUNT,
    account_copies_query,
    increasing_amount_pairs_query,
    increasing_amount_pairs_reference,
    increasing_view_sources,
)
from repro.separations.pairs import (
    approximation_gap,
    componentwise_approximation,
    pair_reachability_query,
    pair_reachability_reference,
)
from repro.separations.semilinear import (
    best_period,
    is_eventually_periodic,
    path_length_set,
    rw_detectable_length_sets,
    square_length_path_exists,
    square_lengths,
    squares_not_rw_detectable,
)

__all__ = [
    "BASE_AMOUNT",
    "account_copies_query",
    "alternating_path_query_ro",
    "alternating_path_query_rw",
    "approximation_gap",
    "best_period",
    "componentwise_approximation",
    "has_alternating_path_reference",
    "increasing_amount_pairs_query",
    "increasing_amount_pairs_reference",
    "increasing_view_sources",
    "is_eventually_periodic",
    "pair_reachability_query",
    "pair_reachability_reference",
    "path_length_set",
    "rw_detectable_length_sets",
    "square_length_path_exists",
    "square_lengths",
    "squares_not_rw_detectable",
    "union_view_sources",
]
