"""Bank-account / transfer workloads (Examples 1.1, 2.1, 5.1, 5.3).

Two schema variants are generated:

* the *IBAN* variant of Example 1.1, where accounts are identified by a
  single column and the relational schema is ``Account(iban)`` and
  ``Transfer(t_id, src_iban, tgt_iban, ts, amount)``;
* the *composite-key* variant of Example 5.1, where accounts are identified
  by the triple ``(bank, branch, acct)``.

Both come with helpers that produce the canonical six view relations, so
examples and benchmarks can feed them straight into ``pgView`` /
``pgView_ext``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.relational.database import Database
from repro.relational.relation import Relation


@dataclass(frozen=True)
class TransferWorkloadConfig:
    """Parameters of a synthetic transfer workload."""

    accounts: int = 50
    transfers: int = 200
    seed: int = 7
    min_amount: int = 1
    max_amount: int = 1000
    start_timestamp: int = 1_700_000_000
    timestamp_step: int = 60


def _amounts(config: TransferWorkloadConfig, rng: random.Random, count: int) -> List[int]:
    return [rng.randint(config.min_amount, config.max_amount) for _ in range(count)]


def generate_iban_database(config: Optional[TransferWorkloadConfig] = None) -> Database:
    """The Example 1.1 schema: ``Account(iban)`` and ``Transfer(...)``."""
    config = config or TransferWorkloadConfig()
    rng = random.Random(config.seed)
    ibans = [f"IBAN{i:05d}" for i in range(config.accounts)]
    amounts = _amounts(config, rng, config.transfers)
    transfers = []
    for index in range(config.transfers):
        src, tgt = rng.sample(ibans, 2)
        transfers.append(
            (
                f"T{index:06d}",
                src,
                tgt,
                config.start_timestamp + index * config.timestamp_step,
                amounts[index],
            )
        )
    return Database.from_dict(
        {
            "Account": [(iban,) for iban in ibans],
            "Transfer": transfers,
        }
    )


def iban_view_relations(database: Database) -> Tuple[Relation, ...]:
    """Derive the six canonical view relations from the Example 1.1 schema.

    This mirrors the ``CREATE PROPERTY GRAPH Transfers`` statement of the
    paper's introduction: accounts become nodes keyed by IBAN, transfers
    become edges keyed by ``t_id`` with ``ts``/``amount`` properties and the
    ``Transfer`` label.
    """
    accounts = database.relation("Account")
    transfers = database.relation("Transfer")
    nodes = accounts
    edges = transfers.project((1,))
    sources = transfers.project((1, 2))
    targets = transfers.project((1, 3))
    label_rows = [(row[0], "Transfer") for row in transfers.rows]
    label_rows += [(row[0], "Account") for row in accounts.rows]
    labels = Relation(2, label_rows)
    property_rows = []
    for row in transfers.rows:
        property_rows.append((row[0], "ts", row[3]))
        property_rows.append((row[0], "amount", row[4]))
    for row in accounts.rows:
        property_rows.append((row[0], "iban", row[0]))
    properties = Relation(3, property_rows)
    return (nodes, edges, sources, targets, labels, properties)


def generate_composite_database(config: Optional[TransferWorkloadConfig] = None) -> Database:
    """The Example 5.1 schema with composite ``(bank, branch, acct)`` keys."""
    config = config or TransferWorkloadConfig()
    rng = random.Random(config.seed)
    accounts = []
    for i in range(config.accounts):
        bank = f"B{i % 5}"
        branch = f"BR{i % 7}"
        acct = f"A{i:05d}"
        accounts.append((bank, branch, acct))
    amounts = _amounts(config, rng, config.transfers)
    transfers = []
    for index in range(config.transfers):
        src, tgt = rng.sample(accounts, 2)
        transfers.append(
            (
                f"T{index:06d}",
                *src,
                *tgt,
                config.start_timestamp + index * config.timestamp_step,
                amounts[index],
            )
        )
    return Database.from_dict(
        {
            "Account": accounts,
            "Transfer": transfers,
        }
    )


def composite_view_relations(database: Database) -> Tuple[Relation, ...]:
    """The Example 5.1 view with composite 3-ary identifiers.

    Edge identifiers are padded to arity 3 (``(t_id, t_id, t_id)``) so nodes
    and edges share one identifier arity, the simplification adopted in
    Remark 5.1 of the paper.
    """
    accounts = database.relation("Account")
    transfers = database.relation("Transfer")
    nodes = accounts
    edges = transfers.project((1, 1, 1))
    sources = transfers.project((1, 1, 1, 2, 3, 4))
    targets = transfers.project((1, 1, 1, 5, 6, 7))
    labels = Relation(4, [(row[0], row[0], row[0], "Transfer") for row in transfers.rows])
    property_rows = []
    for row in transfers.rows:
        property_rows.append((row[0], row[0], row[0], "ts", row[7]))
        property_rows.append((row[0], row[0], row[0], "amount", row[8]))
    properties = Relation(5, property_rows)
    return (nodes, edges, sources, targets, labels, properties)


def generate_transfer_chain(length: int, *, increasing: bool = True, seed: int = 3) -> Database:
    """A single chain of transfers ``a_0 -> a_1 -> ... -> a_length``.

    Amounts along the chain are strictly increasing when ``increasing`` is
    True and randomly shuffled otherwise; used by the Example 5.3 workload
    (increasing-amount paths).
    """
    rng = random.Random(seed)
    ibans = [f"IBAN{i:05d}" for i in range(length + 1)]
    amounts = list(range(10, 10 * (length + 1), 10))
    if not increasing:
        rng.shuffle(amounts)
    transfers = [
        (f"T{i:06d}", ibans[i], ibans[i + 1], 1_700_000_000 + i, amounts[i])
        for i in range(length)
    ]
    return Database.from_dict({"Account": [(i,) for i in ibans], "Transfer": transfers})
