"""Synthetic workload generators used by examples, tests and benchmarks."""

from repro.datasets.bank import (
    TransferWorkloadConfig,
    composite_view_relations,
    generate_composite_database,
    generate_iban_database,
    generate_transfer_chain,
    iban_view_relations,
)
from repro.datasets.colored import (
    COLORED_SCHEMA,
    alternating_chain,
    bipartite_random,
    colored_labels_relation,
    non_alternating_pair,
)
from repro.datasets.random_graphs import (
    GRAPH_VIEW_SCHEMA,
    chain,
    cycle,
    disjoint_chains,
    erdos_renyi,
    grid,
    layered_dag,
    pair_graph_database,
    star_graph,
)
from repro.datasets.social import (
    SocialNetworkConfig,
    generate_social_database,
    social_view_relations,
)

__all__ = [
    "COLORED_SCHEMA",
    "GRAPH_VIEW_SCHEMA",
    "SocialNetworkConfig",
    "TransferWorkloadConfig",
    "alternating_chain",
    "bipartite_random",
    "chain",
    "colored_labels_relation",
    "composite_view_relations",
    "cycle",
    "disjoint_chains",
    "erdos_renyi",
    "generate_composite_database",
    "generate_iban_database",
    "generate_social_database",
    "generate_transfer_chain",
    "grid",
    "iban_view_relations",
    "layered_dag",
    "non_alternating_pair",
    "pair_graph_database",
    "social_view_relations",
    "star_graph",
]
