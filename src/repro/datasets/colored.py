"""Red/blue coloured graphs for the PGQro vs PGQrw separation (Theorem 4.1).

The database ``D_G`` of Appendix 9.2: node identifiers are partitioned into
``RedNodes`` and ``BlueNodes``, edges are stored in ``Edges`` with
``Source`` and ``Target`` relations, and every edge connects nodes of
opposite colours.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.relational.database import Database
from repro.relational.relation import Relation

#: Relation names of the coloured-graph schema, in pgView order minus labels.
COLORED_SCHEMA = ("RedNodes", "BlueNodes", "Edges", "Source", "Target")


def alternating_chain(length: int) -> Database:
    """A simple red/blue alternating chain with ``length`` edges.

    Node ``n_i`` is red for even ``i`` and blue for odd ``i``; edge ``e_i``
    goes from ``n_i`` to ``n_{i+1}``.  The chain therefore contains an
    alternating-colour path of every length up to ``length``.
    """
    red, blue, edges, sources, targets = [], [], [], [], []
    for i in range(length + 1):
        name = f"n{i}"
        (red if i % 2 == 0 else blue).append((name,))
    for i in range(length):
        edge = f"e{i}"
        edges.append((edge,))
        sources.append((edge, f"n{i}"))
        targets.append((edge, f"n{i + 1}"))
    return Database.from_dict(
        {
            "RedNodes": red,
            "BlueNodes": blue,
            "Edges": edges,
            "Source": sources,
            "Target": targets,
        },
        arities={"RedNodes": 1, "BlueNodes": 1, "Edges": 1, "Source": 2, "Target": 2},
    )


def bipartite_random(red_count: int, blue_count: int, edge_count: int, *, seed: int = 11) -> Database:
    """A random bipartite red/blue graph (edges connect opposite colours)."""
    rng = random.Random(seed)
    red = [f"r{i}" for i in range(red_count)]
    blue = [f"b{i}" for i in range(blue_count)]
    edges, sources, targets = [], [], []
    for index in range(edge_count):
        if rng.random() < 0.5:
            source, target = rng.choice(red), rng.choice(blue)
        else:
            source, target = rng.choice(blue), rng.choice(red)
        edge = f"e{index}"
        edges.append((edge,))
        sources.append((edge, source))
        targets.append((edge, target))
    return Database.from_dict(
        {
            "RedNodes": [(r,) for r in red],
            "BlueNodes": [(b,) for b in blue],
            "Edges": edges,
            "Source": sources,
            "Target": targets,
        },
        arities={"RedNodes": 1, "BlueNodes": 1, "Edges": 1, "Source": 2, "Target": 2},
    )


def non_alternating_pair(length: int) -> Database:
    """A graph with edges but *no* red-blue-red alternating path of length 2.

    Consists of disjoint single edges red -> blue; useful as the negative
    instance in the Theorem 4.1 experiments.
    """
    red, blue, edges, sources, targets = [], [], [], [], []
    for i in range(length):
        red.append((f"r{i}",))
        blue.append((f"b{i}",))
        edge = f"e{i}"
        edges.append((edge,))
        sources.append((edge, f"r{i}"))
        targets.append((edge, f"b{i}"))
    return Database.from_dict(
        {
            "RedNodes": red,
            "BlueNodes": blue,
            "Edges": edges,
            "Source": sources,
            "Target": targets,
        },
        arities={"RedNodes": 1, "BlueNodes": 1, "Edges": 1, "Source": 2, "Target": 2},
    )


def colored_labels_relation(database: Database) -> Relation:
    """A label relation assigning ``RedNodes``/``BlueNodes`` labels to nodes.

    The PGQrw separating query materializes the union graph and then uses
    label tests in its filter, so the view needs an explicit label relation.
    """
    rows: List[Tuple[str, str]] = []
    for (node,) in database.relation("RedNodes").rows:
        rows.append((node, "RedNodes"))
    for (node,) in database.relation("BlueNodes").rows:
        rows.append((node, "BlueNodes"))
    return Relation(2, rows)
