"""Random and structured graph generators used across tests and benchmarks.

All generators return a :class:`~repro.relational.database.Database` in the
canonical six-relation layout (``N``, ``E``, ``S``, ``T``, ``L``, ``P``)
so they can be queried directly with ``psi_Omega(N, E, S, T, L, P)``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.relational.database import Database

#: Canonical relation names used by the generated graph-view databases.
GRAPH_VIEW_SCHEMA = ("N", "E", "S", "T", "L", "P")


def _database(
    nodes: Sequence[str],
    edges: Sequence[Tuple[str, str, str]],
    labels: Sequence[Tuple[str, str]] = (),
    properties: Sequence[Tuple[str, str, object]] = (),
) -> Database:
    """Assemble a graph-view database from node/edge/label/property lists."""
    return Database.from_dict(
        {
            "N": [(n,) for n in nodes],
            "E": [(e,) for e, _s, _t in edges],
            "S": [(e, s) for e, s, _t in edges],
            "T": [(e, t) for e, _s, t in edges],
            "L": list(labels),
            "P": list(properties),
        },
        arities={"N": 1, "E": 1, "S": 2, "T": 2, "L": 2, "P": 3},
    )


def chain(length: int, *, label: Optional[str] = None) -> Database:
    """A directed chain ``v0 -> v1 -> ... -> v_length``."""
    nodes = [f"v{i}" for i in range(length + 1)]
    edges = [(f"e{i}", f"v{i}", f"v{i + 1}") for i in range(length)]
    labels = [(f"e{i}", label) for i in range(length)] if label else []
    return _database(nodes, edges, labels)


def cycle(length: int) -> Database:
    """A directed cycle with ``length`` nodes (length >= 1)."""
    nodes = [f"v{i}" for i in range(length)]
    edges = [(f"e{i}", f"v{i}", f"v{(i + 1) % length}") for i in range(length)]
    return _database(nodes, edges)


def star_graph(leaves: int) -> Database:
    """A star: edges from a central node ``c`` to each leaf."""
    nodes = ["c"] + [f"l{i}" for i in range(leaves)]
    edges = [(f"e{i}", "c", f"l{i}") for i in range(leaves)]
    return _database(nodes, edges)


def grid(rows: int, columns: int) -> Database:
    """A directed grid with edges rightwards and downwards."""
    nodes = [f"v{r}_{c}" for r in range(rows) for c in range(columns)]
    edges = []
    index = 0
    for r in range(rows):
        for c in range(columns):
            if c + 1 < columns:
                edges.append((f"e{index}", f"v{r}_{c}", f"v{r}_{c + 1}"))
                index += 1
            if r + 1 < rows:
                edges.append((f"e{index}", f"v{r}_{c}", f"v{r + 1}_{c}"))
                index += 1
    return _database(nodes, edges)


def erdos_renyi(node_count: int, edge_probability: float, *, seed: int = 13,
                labels: Sequence[str] = (), property_key: Optional[str] = None,
                property_range: Tuple[int, int] = (1, 100)) -> Database:
    """A directed Erdos-Renyi style random graph.

    Every ordered pair of distinct nodes gets an edge with the given
    probability.  Optional node labels are assigned uniformly at random from
    ``labels`` and an optional integer edge property is drawn uniformly from
    ``property_range``.
    """
    rng = random.Random(seed)
    nodes = [f"v{i}" for i in range(node_count)]
    edges: List[Tuple[str, str, str]] = []
    label_rows: List[Tuple[str, str]] = []
    property_rows: List[Tuple[str, str, object]] = []
    index = 0
    for source in nodes:
        for target in nodes:
            if source != target and rng.random() < edge_probability:
                edge = f"e{index}"
                index += 1
                edges.append((edge, source, target))
                if property_key is not None:
                    property_rows.append(
                        (edge, property_key, rng.randint(*property_range))
                    )
    if labels:
        for node in nodes:
            label_rows.append((node, rng.choice(list(labels))))
    return _database(nodes, edges, label_rows, property_rows)


def disjoint_chains(chain_count: int, length: int) -> Database:
    """Several disjoint chains, useful for locality-style arguments."""
    nodes: List[str] = []
    edges: List[Tuple[str, str, str]] = []
    for c in range(chain_count):
        for i in range(length + 1):
            nodes.append(f"c{c}_v{i}")
        for i in range(length):
            edges.append((f"c{c}_e{i}", f"c{c}_v{i}", f"c{c}_v{i + 1}"))
    return _database(nodes, edges)


def layered_dag(layers: int, width: int, *, seed: int = 17, edge_probability: float = 0.5) -> Database:
    """A layered DAG: edges only go from layer ``i`` to layer ``i + 1``."""
    rng = random.Random(seed)
    nodes = [f"v{layer}_{slot}" for layer in range(layers) for slot in range(width)]
    edges: List[Tuple[str, str, str]] = []
    index = 0
    for layer in range(layers - 1):
        for a in range(width):
            for b in range(width):
                if rng.random() < edge_probability:
                    edges.append((f"e{index}", f"v{layer}_{a}", f"v{layer + 1}_{b}"))
                    index += 1
    return _database(nodes, edges)


def pair_graph_database(node_count: int, *, seed: int = 19, edge_probability: float = 0.15) -> Database:
    """A database with a 4-ary relation ``E4`` encoding edges between node pairs.

    Used for the Theorem 5.2 separation: reachability over *pairs* of nodes
    is a PGQ_2 / FO[TC_2] query.  The relation ``E4(u1, u2, v1, v2)`` says
    the pair ``(u1, u2)`` steps to ``(v1, v2)``.
    """
    rng = random.Random(seed)
    values = [f"a{i}" for i in range(node_count)]
    rows = []
    for u1 in values:
        for u2 in values:
            for v1 in values:
                for v2 in values:
                    if (u1, u2) != (v1, v2) and rng.random() < edge_probability:
                        rows.append((u1, u2, v1, v2))
    return Database.from_dict({"E4": rows, "V": [(v,) for v in values]},
                              arities={"E4": 4, "V": 1})
