"""A small LDBC-style social-network workload.

Property graphs in industry (fraud detection, recommendations -- the
applications cited in the paper's introduction) are usually social-network
shaped: people connected by *knows* edges, posts connected to their authors,
and cities/countries as attributes.  This generator produces such a
workload in plain relational form so the SQL/PGQ surface syntax and the
view-definition layer can be exercised on something richer than the bank
schema.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.relational.database import Database
from repro.relational.relation import Relation

_FIRST_NAMES = [
    "Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald", "Leslie", "John",
    "Frances", "Tony", "Edgar", "Stephen",
]
_CITIES = ["Jerusalem", "Tel Aviv", "Haifa", "Berlin", "Paris", "London", "New York"]


@dataclass(frozen=True)
class SocialNetworkConfig:
    """Parameters of the synthetic social network."""

    people: int = 40
    posts: int = 80
    knows_probability: float = 0.08
    seed: int = 23


def generate_social_database(config: Optional[SocialNetworkConfig] = None) -> Database:
    """Generate the relational form of the social network.

    Relations:

    * ``Person(person_id, name, city)``
    * ``Post(post_id, author_id, length)``
    * ``Knows(knows_id, src_id, tgt_id, since)``
    * ``Likes(likes_id, person_id, post_id)``
    """
    config = config or SocialNetworkConfig()
    rng = random.Random(config.seed)
    people = [
        (f"p{i}", rng.choice(_FIRST_NAMES), rng.choice(_CITIES))
        for i in range(config.people)
    ]
    posts = [
        (f"m{i}", rng.choice(people)[0], rng.randint(10, 500))
        for i in range(config.posts)
    ]
    knows: List[Tuple[str, str, str, int]] = []
    index = 0
    for (src, _n1, _c1) in people:
        for (tgt, _n2, _c2) in people:
            if src != tgt and rng.random() < config.knows_probability:
                knows.append((f"k{index}", src, tgt, 2000 + rng.randint(0, 25)))
                index += 1
    likes = [
        (f"l{i}", rng.choice(people)[0], rng.choice(posts)[0])
        for i in range(config.posts * 2)
    ]
    return Database.from_dict(
        {
            "Person": people,
            "Post": posts,
            "Knows": knows,
            "Likes": likes,
        },
        arities={"Person": 3, "Post": 3, "Knows": 4, "Likes": 3},
    )


def social_view_relations(database: Database) -> Tuple[Relation, ...]:
    """Six-relation property graph view of the social network.

    Nodes are people and posts; edges are ``Knows`` and ``Likes``.  People
    carry ``name``/``city`` properties, posts carry ``length``, and every
    element is labelled with its kind.
    """
    person = database.relation("Person")
    post = database.relation("Post")
    knows = database.relation("Knows")
    likes = database.relation("Likes")

    nodes = person.project((1,)).union(post.project((1,)))
    edges = knows.project((1,)).union(likes.project((1,)))
    sources = knows.project((1, 2)).union(likes.project((1, 2)))
    targets = knows.project((1, 3)).union(likes.project((1, 3)))

    label_rows = (
        [(row[0], "Person") for row in person.rows]
        + [(row[0], "Post") for row in post.rows]
        + [(row[0], "Knows") for row in knows.rows]
        + [(row[0], "Likes") for row in likes.rows]
    )
    property_rows = (
        [(row[0], "name", row[1]) for row in person.rows]
        + [(row[0], "city", row[2]) for row in person.rows]
        + [(row[0], "length", row[2]) for row in post.rows]
        + [(row[0], "since", row[3]) for row in knows.rows]
    )
    return (
        nodes,
        edges,
        sources,
        targets,
        Relation(2, label_rows),
        Relation(3, property_rows),
    )
