"""Query parameters: the :class:`Parameter` slot sentinel and binding helpers.

A :class:`Parameter` stands for a literal that is supplied at *execution*
time rather than at *preparation* time.  It can appear anywhere a constant
may: in pattern conditions (``PropertyCompare(x, "amount", ">",
Parameter("minimum"))``), in relational selection conditions
(``ColumnCompareConstant(3, ">", Parameter("minimum"))``) and in
``Constant`` query nodes.  Condition trees built over parameter slots are
*parameterized shapes*: they hash and compare structurally, so a plan
compiled (and cached) for one shape serves every binding of that shape —
this is what lets ``prepare(q).execute(a)`` and ``.execute(b)`` share one
plan compilation.

Bindings are plain ``{name: value}`` mappings.  Binding is performed by
the ``bind``/``bind_*`` family on conditions, patterns and queries (all
identity-preserving: a tree without slots is returned unchanged), and the
engines check for missing bindings up front so an unbound slot raises
:class:`~repro.errors.BindingError` instead of silently matching nothing.
As a second line of defence, *ordered* comparisons against an unbound
``Parameter`` raise :class:`BindingError` through the reflected operators
(equality stays structural — it is what makes parameterized shapes
hashable plan-cache keys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Mapping

from repro.errors import BindingError

#: A parameter binding set: slot name -> literal value.
Bindings = Mapping[str, Any]


@dataclass(frozen=True)
class Parameter:
    """A named parameter slot standing in for a literal (``:name`` in SQL).

    Frozen and hashable so parameterized condition trees keep working as
    plan-cache keys; two occurrences of ``:minimum`` are equal, so the
    same statement re-prepared yields the same cached shape.
    """

    name: str

    def __repr__(self) -> str:
        return f":{self.name}"

    # Ordered comparisons must never silently succeed against an unbound
    # slot.  ``value < Parameter`` dispatches here through the reflected
    # operator, so the guard costs nothing on bound (concrete) constants.
    def _unbound(self, _other: Any):
        raise BindingError(
            f"parameter :{self.name} is unbound; bind it before evaluation "
            f"(e.g. prepared.execute({self.name}=...))"
        )

    __lt__ = __le__ = __gt__ = __ge__ = _unbound


def bind_value(value: Any, bindings: Bindings) -> Any:
    """Resolve ``value`` against ``bindings`` when it is a parameter slot."""
    if isinstance(value, Parameter):
        try:
            return bindings[value.name]
        except KeyError:
            raise BindingError(f"no binding supplied for parameter :{value.name}") from None
    return value


def merge_bindings(bindings: "Bindings | None", named: Bindings) -> dict:
    """Merge a bindings mapping with keyword bindings (keywords win).

    The single precedence rule shared by every ``execute`` surface
    (prepared statements, compiled queries, the SQLite backend).
    """
    merged = dict(bindings) if bindings else {}
    if named:
        merged.update(named)
    return merged


def missing_parameters(names: Iterable[str], bindings: Bindings) -> List[str]:
    """Parameter names without a binding, sorted (empty when fully bound)."""
    return sorted(name for name in names if name not in bindings)


def require_bindings(names: Iterable[str], bindings: Bindings) -> None:
    """Raise :class:`BindingError` naming every missing parameter."""
    missing = missing_parameters(names, bindings)
    if missing:
        slots = ", ".join(f":{name}" for name in missing)
        raise BindingError(f"missing bindings for parameters {slots}")


def unknown_bindings(names: Iterable[str], bindings: Bindings) -> List[str]:
    """Binding names the statement declares no slot for, sorted."""
    declared = set(names)
    return sorted(name for name in bindings if name not in declared)


def check_bindings(names: Iterable[str], bindings: Bindings) -> None:
    """Validate a binding set against a statement's declared slots.

    Raises a single :class:`BindingError` that lists *every* problem at
    once — all missing slots and all unknown extras — so a caller fixing
    their bindings sees the complete picture in one round trip instead of
    one name per attempt.
    """
    names = tuple(names)
    missing = missing_parameters(names, bindings)
    unknown = unknown_bindings(names, bindings)
    if not missing and not unknown:
        return
    problems = []
    if missing:
        slots = ", ".join(f":{name}" for name in missing)
        problems.append(f"missing bindings for parameters {slots}")
    if unknown:
        slots = ", ".join(f":{name}" for name in unknown)
        declared = ", ".join(f":{name}" for name in sorted(names)) or "none"
        problems.append(f"unknown parameters {slots} (declared: {declared})")
    raise BindingError("; ".join(problems))
