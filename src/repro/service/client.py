"""Stdlib client for the query service (``http.client``, keep-alive).

:class:`ServiceClient` is what the benchmark, the tests and
``examples/service_client.py`` talk through: one persistent HTTP/1.1
connection per client instance (reused across requests, reconnected
transparently when the server dropped it), JSON encoding/decoding, and
error responses raised as :class:`ServiceError` carrying the status,
the server-side exception type and the governance ``progress`` dict.
"""

from __future__ import annotations

import http.client
import json
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["QueryResponse", "ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """A non-2xx service response.

    ``status`` is the HTTP code (408 deadline, 429 admission/pool, 413
    budget, 400 bad statement, ...), ``kind`` the server-side exception
    class name, ``progress`` the governance partial-progress counters
    (empty for non-governance errors).
    """

    def __init__(
        self,
        status: int,
        kind: str,
        message: str,
        *,
        progress: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(f"[{status} {kind}] {message}")
        self.status = status
        self.kind = kind
        self.progress = dict(progress) if progress else {}


@dataclass
class QueryResponse:
    """A decoded ``POST /query`` result."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    row_count: int
    elapsed_ms: float
    engine: str
    snapshot: str
    streamed: bool = False

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


@dataclass
class _Transport:
    host: str
    port: int
    timeout_s: float
    connection: Optional[http.client.HTTPConnection] = field(default=None)


class ServiceClient:
    """A persistent JSON client for one service endpoint.

    Not thread-safe: ``http.client`` serializes request/response pairs
    on one socket, so give each worker thread its own client (that is
    exactly what the load generator does).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, *, timeout_s: float = 30.0):
        self._transport = _Transport(host=host, port=port, timeout_s=timeout_s)

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def query(
        self,
        statement: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        timeout_ms: Optional[float] = None,
        max_output_rows: Optional[int] = None,
        max_intermediate: Optional[int] = None,
    ) -> QueryResponse:
        """Execute one statement; non-200 raises :class:`ServiceError`."""
        payload: Dict[str, Any] = {"statement": statement}
        if params:
            payload["params"] = params
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        if max_output_rows is not None:
            payload["max_output_rows"] = max_output_rows
        if max_intermediate is not None:
            payload["max_intermediate"] = max_intermediate
        body = self._json_request("POST", "/query", payload)
        return QueryResponse(
            columns=list(body["columns"]),
            rows=[tuple(row) for row in body["rows"]],
            row_count=int(body["row_count"]),
            elapsed_ms=float(body["elapsed_ms"]),
            engine=str(body["engine"]),
            snapshot=str(body["snapshot"]),
            streamed=bool(body.get("streamed", False)),
        )

    def ddl(self, statement: str) -> Dict[str, Any]:
        """Apply one ``CREATE PROPERTY GRAPH`` statement."""
        return self._json_request("POST", "/ddl", {"statement": statement})

    def create_table(
        self, name: str, columns: Sequence[str], rows: Sequence[Sequence[Any]]
    ) -> Dict[str, Any]:
        """Create (or replace) a base table through ``POST /ddl``."""
        table = {"name": name, "columns": list(columns), "rows": [list(r) for r in rows]}
        return self._json_request("POST", "/ddl", {"table": table})

    def healthz(self) -> Dict[str, Any]:
        return self._json_request("GET", "/healthz", None)

    def metrics(self) -> str:
        """The raw Prometheus text exposition."""
        status, _, body = self._request("GET", "/metrics", None)
        if status != 200:
            self._raise(status, body)
        return body.decode("utf-8")

    # ------------------------------------------------------------------ #
    # Wire plumbing
    # ------------------------------------------------------------------ #
    def _json_request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]]
    ) -> Dict[str, Any]:
        status, _, body = self._request(method, path, payload)
        if status != 200:
            self._raise(status, body)
        return json.loads(body.decode("utf-8"))

    @staticmethod
    def _raise(status: int, body: bytes) -> None:
        try:
            detail = json.loads(body.decode("utf-8")).get("error", {})
        except (UnicodeDecodeError, json.JSONDecodeError):
            detail = {}
        raise ServiceError(
            status,
            str(detail.get("type", "unknown")),
            str(detail.get("message", body[:200].decode("utf-8", "replace"))),
            progress=detail.get("progress"),
        )

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]]
    ) -> Tuple[int, str, bytes]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {} if body is None else {"Content-Type": "application/json"}
        # One retry on a dead keep-alive socket: the server may have
        # closed an idle connection (or shed load with Connection:
        # close) between our requests.
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                data = response.read()
                return response.status, response.getheader("Content-Type", ""), data
            except socket.timeout:
                # Never resubmit on timeout: the query may still be
                # running server-side; doubling it makes overload worse.
                self.close()
                raise
            except (
                http.client.BadStatusLine,
                http.client.CannotSendRequest,
                ConnectionError,
                OSError,
            ):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _connect(self) -> http.client.HTTPConnection:
        transport = self._transport
        if transport.connection is None:
            transport.connection = http.client.HTTPConnection(
                transport.host, transport.port, timeout=transport.timeout_s
            )
        return transport.connection

    def close(self) -> None:
        transport = self._transport
        connection, transport.connection = transport.connection, None
        if connection is not None:
            connection.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
