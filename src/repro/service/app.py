"""Transport-agnostic request handling for the graph query service.

:class:`QueryService` owns the connection pool and turns ``(method,
path, body)`` triples into ``(status, content type, body)`` responses —
the HTTP server in :mod:`repro.service.http` is a thin adapter over
:meth:`QueryService.handle`, and tests drive the service in-process
without sockets.

Every request is measured: a ``repro_service_requests_total`` counter
per route/status, a ``repro_service_request_seconds`` latency histogram
per route (p50/p95/p99 via the registry's reservoir), pool gauges, and
— when the database's tracer is enabled — a ``service.request`` span
wrapping the dispatch so per-request traces nest the engine's own
spans.
"""

from __future__ import annotations

import logging
from time import monotonic, perf_counter
from typing import Any, Dict, Optional, Tuple

from repro.engine.database import Database
from repro.errors import ReproError
from repro.service.pool import ConnectionPool
from repro.service.protocol import (
    CONTENT_TYPE_JSON,
    CONTENT_TYPE_PROMETHEUS,
    ProtocolError,
    QueryRequest,
    dry_run_response,
    encode,
    error_payload,
    parse_json,
    query_response,
    status_for,
)

__all__ = ["QueryService", "Response"]

_LOGGER = logging.getLogger("repro.service")

#: ``handle()``'s return shape: (HTTP status, content type, body bytes).
Response = Tuple[int, str, bytes]


class QueryService:
    """The service core: routes requests over a pooled database catalog.

    Endpoints:

    * ``POST /query`` — execute one SQL/PGQ statement with optional
      ``params`` and per-request governance (``timeout_ms``,
      ``max_output_rows``, ``max_intermediate``); ``dry_run: true``
      analyzes and compiles without executing, answering with the
      inferred result schema, typed parameter signature and the
      structured analysis diagnostics.
    * ``POST /ddl`` — apply ``CREATE PROPERTY GRAPH`` DDL and/or create
      a base table, then hand the pool off to the new snapshot.
    * ``GET /healthz`` — liveness plus catalog/pool state.
    * ``GET /metrics`` — the metrics registry in Prometheus text format.
    """

    def __init__(
        self,
        database: Database,
        *,
        engine: str = "planned",
        pool_size: int = 8,
        default_timeout_ms: Optional[float] = None,
        acquire_timeout_s: float = 5.0,
        max_repetitions: Optional[int] = None,
        **engine_options: Any,
    ):
        self.database = database
        self.pool = ConnectionPool(
            database,
            engine=engine,
            size=pool_size,
            acquire_timeout_s=acquire_timeout_s,
            max_repetitions=max_repetitions,
            **engine_options,
        )
        self._default_timeout_ms = default_timeout_ms
        self._metrics = database.metrics
        self._started = monotonic()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def handle(self, method: str, path: str, body: bytes = b"") -> Response:
        """Serve one request; never raises — errors become responses."""
        start = perf_counter()
        path = path.split("?", 1)[0]
        route = path if path in ("/query", "/ddl", "/healthz", "/metrics") else "unknown"
        tracer = self.database.tracer
        span = (
            tracer.span("service.request", route=route, method=method)
            if tracer.enabled
            else None
        )
        try:
            if span is not None:
                with span:
                    status, content_type, payload = self._dispatch(method, path, body)
                    span.tag(status=status)
            else:
                status, content_type, payload = self._dispatch(method, path, body)
        except ReproError as error:
            status = status_for(error)
            content_type, payload = CONTENT_TYPE_JSON, encode(error_payload(error))
        except Exception as error:  # service boundary: always answer
            _LOGGER.exception("unhandled error serving %s %s", method, path)
            status = 500
            content_type = CONTENT_TYPE_JSON
            payload = encode(
                {"error": {"type": type(error).__name__, "message": str(error)}}
            )
        self._observe(route, status, perf_counter() - start)
        return status, content_type, payload

    def _dispatch(self, method: str, path: str, body: bytes) -> Response:
        if path == "/query":
            self._require(method, "POST", path)
            return self._handle_query(body)
        if path == "/ddl":
            self._require(method, "POST", path)
            return self._handle_ddl(body)
        if path == "/healthz":
            self._require(method, "GET", path)
            return 200, CONTENT_TYPE_JSON, encode(self.health())
        if path == "/metrics":
            self._require(method, "GET", path)
            return 200, CONTENT_TYPE_PROMETHEUS, self.metrics_text().encode("utf-8")
        raise ProtocolError(f"no such endpoint: {path}", status=404)

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise ProtocolError(
                f"{path} takes {expected}, not {method}", status=405
            )

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _handle_query(self, body: bytes) -> Response:
        request = QueryRequest.from_payload(parse_json(body))
        if request.statement.lstrip()[:6].upper() == "CREATE":
            raise ProtocolError(
                "DDL goes through POST /ddl (pooled connections stay "
                "pinned to their snapshot)"
            )
        if request.dry_run:
            return self._handle_dry_run(request)
        budget = request.budget(default_timeout_ms=self._default_timeout_ms)
        start = perf_counter()
        with self.pool.acquire() as connection:
            result = connection.execute(
                request.statement, request.params, budget=budget
            )
            # Materialize inside the lease: the rows may stream from a
            # live cursor that closes when the connection is recycled.
            rows = [list(row) for row in result.rows]
            payload = query_response(
                columns=list(result.columns),
                rows=rows,
                elapsed_ms=(perf_counter() - start) * 1000.0,
                engine=connection.engine_name,
                snapshot=connection.snapshot.fingerprint,
                streamed=result.streamed,
            )
        return 200, CONTENT_TYPE_JSON, encode(payload)

    def _handle_dry_run(self, request: QueryRequest) -> Response:
        """``dry_run: true`` — analyze and compile, never execute.

        The response carries the analyzer's inferred result schema and
        typed parameter signature, the structured analysis diagnostics
        (semantic + dataflow), and the ``statically_empty`` verdict.
        Analysis *errors* surface as 400s like any bad statement, so a
        dry run is a cheap validity probe before committing a budgeted
        execution.
        """
        start = perf_counter()
        with self.pool.acquire() as connection:
            prepared = connection.prepare(request.statement)
            payload = dry_run_response(
                schema=list(prepared.result_schema),
                diagnostics=[
                    diagnostic.to_payload()
                    for diagnostic in prepared.analysis_diagnostics
                ],
                parameters=dict(prepared.parameter_types),
                statically_empty=prepared.statically_empty,
                elapsed_ms=(perf_counter() - start) * 1000.0,
                engine=connection.engine_name,
                snapshot=connection.snapshot.fingerprint,
            )
        return 200, CONTENT_TYPE_JSON, encode(payload)

    def _handle_ddl(self, body: bytes) -> Response:
        payload = parse_json(body)
        unknown = sorted(set(payload) - {"statement", "table"})
        if unknown:
            raise ProtocolError(f"unknown ddl field(s): {', '.join(unknown)}")
        statement = payload.get("statement")
        table = payload.get("table")
        if statement is None and table is None:
            raise ProtocolError("ddl request needs 'statement' and/or 'table'")
        applied: Dict[str, Any] = {}
        if table is not None:
            applied["table"] = self._create_table(table)
        if statement is not None:
            if not isinstance(statement, str) or not statement.strip():
                raise ProtocolError("'statement' must be a non-empty string")
            applied["graph"] = self.database.execute(statement).name
        handoff = self.pool.refresh()
        stats = self.pool.stats()
        applied.update(
            {
                "version": stats["version"],
                "snapshot": stats["snapshot"],
                "handoff": handoff,
            }
        )
        return 200, CONTENT_TYPE_JSON, encode(applied)

    def _create_table(self, spec: Any) -> str:
        if not isinstance(spec, dict):
            raise ProtocolError("'table' must be an object")
        unknown = sorted(set(spec) - {"name", "columns", "rows"})
        if unknown:
            raise ProtocolError(f"unknown table field(s): {', '.join(unknown)}")
        name = spec.get("name")
        columns = spec.get("columns")
        rows = spec.get("rows", [])
        if not isinstance(name, str) or not name:
            raise ProtocolError("'table.name' must be a non-empty string")
        if not isinstance(columns, list) or not all(
            isinstance(column, str) for column in columns
        ):
            raise ProtocolError("'table.columns' must be a list of strings")
        if not isinstance(rows, list) or not all(
            isinstance(row, list) for row in rows
        ):
            raise ProtocolError("'table.rows' must be a list of lists")
        self.database.create_table(name, columns, [tuple(row) for row in rows])
        return name

    def health(self) -> Dict[str, Any]:
        """The ``GET /healthz`` body."""
        stats = self.pool.stats()
        return {
            "status": "ok",
            "uptime_s": round(monotonic() - self._started, 3),
            "engine": self.pool.engine,
            "version": stats["version"],
            "snapshot": stats["snapshot"],
            "graphs": sorted(self.pool.snapshot.catalog.names()),
            "pool": stats,
        }

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition)."""
        self.database.export_metrics()  # sync cache-level gauges
        stats = self.pool.stats()
        self._metrics.set_gauges(
            {
                "repro_service_pool_available": stats["available"],
                "repro_service_pool_in_flight": stats["in_flight"],
                "repro_service_pool_retired_open": stats["retired_open"],
                "repro_service_pool_handoffs": stats["handoffs"],
            }
        )
        return self._metrics.to_prometheus()

    # ------------------------------------------------------------------ #
    # Measurement / lifecycle
    # ------------------------------------------------------------------ #
    def _observe(self, route: str, status: int, elapsed_s: float) -> None:
        self._metrics.counter(
            "repro_service_requests_total",
            "Requests served, by route and HTTP status.",
            route=route,
            status=str(status),
        ).inc()
        self._metrics.histogram(
            "repro_service_request_seconds",
            "End-to-end request latency per route.",
            route=route,
        ).observe(elapsed_s)

    def close(self) -> None:
        """Release the pool (the database stays with its owner)."""
        self.pool.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
