"""Wire protocol of the query service: JSON shapes + error→HTTP mapping.

The service speaks plain HTTP/JSON.  This module is transport-free: it
validates request payloads into typed objects, renders response bodies,
and maps the repro exception hierarchy onto HTTP status codes.  The
mapping is the service's governance contract (ISSUE 9 / ROADMAP item 1):

=============================  ======  ========================================
exception                      status  meaning on the wire
=============================  ======  ========================================
``QueryTimeoutError``          408     per-request ``timeout_ms`` deadline hit
``AdmissionTimeoutError``      429     ``max_concurrent_queries`` semaphore or
                                       connection pool stayed full
``ResourceExhaustedError``     413     ``max_output_rows``/``max_intermediate``
``QueryCancelledError``        499     cancelled via token (nginx convention)
``ParseError`` / ``QueryError``
/ ``SchemaError`` ...          400     the statement itself is at fault
``ConnectionClosedError``      503     catalog/pool shut down under the request
``EngineError`` (other)        500     backend failure
=============================  ======  ========================================

Governance errors additionally carry the partial-progress dict
(checkpoints fired, intermediate tuples counted, elapsed seconds) in the
JSON body, so a caller that got a 408 can see how far its query ran.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    AdmissionTimeoutError,
    ConnectionClosedError,
    EngineError,
    GovernanceError,
    GraphError,
    ParseError,
    PatternError,
    QueryCancelledError,
    QueryError,
    QueryTimeoutError,
    ReproError,
    ResourceExhaustedError,
    SchemaError,
    ViewError,
)
from repro.governance import QueryBudget

__all__ = [
    "CONTENT_TYPE_JSON",
    "CONTENT_TYPE_PROMETHEUS",
    "ProtocolError",
    "QueryRequest",
    "dry_run_response",
    "encode",
    "error_payload",
    "parse_json",
    "query_response",
    "status_for",
]

CONTENT_TYPE_JSON = "application/json; charset=utf-8"
CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"


class ProtocolError(ReproError):
    """A request the service cannot interpret (malformed JSON, wrong
    field types, unknown endpoint, wrong method).  Carries the HTTP
    status the transport should answer with."""

    def __init__(self, message: str, *, status: int = 400):
        super().__init__(message)
        self.status = status


#: Most-specific-first mapping from exception class to HTTP status.  The
#: first ``isinstance`` hit wins, so subclasses must precede their bases
#: (``QueryTimeoutError`` before ``GovernanceError`` before
#: ``EngineError``).
_STATUS_BY_ERROR: Tuple[Tuple[type, int], ...] = (
    (QueryTimeoutError, 408),
    (AdmissionTimeoutError, 429),
    (QueryCancelledError, 499),
    (ResourceExhaustedError, 413),
    (GovernanceError, 500),
    (ConnectionClosedError, 503),
    (ParseError, 400),
    (QueryError, 400),
    (SchemaError, 400),
    (GraphError, 400),
    (ViewError, 400),
    (PatternError, 400),
    (EngineError, 500),
    (ReproError, 500),
)


def status_for(error: BaseException) -> int:
    """The HTTP status code for ``error`` per the governance contract."""
    if isinstance(error, ProtocolError):
        return error.status
    for kind, status in _STATUS_BY_ERROR:
        if isinstance(error, kind):
            return status
    return 500


def error_payload(error: BaseException) -> Dict[str, Any]:
    """The JSON body describing ``error``.

    Always ``{"error": {"type", "message"}}``; governance errors add
    their ``progress`` counters, cancellations and closed handles add
    the ``reason`` recorded at the stop site.
    """
    detail: Dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, GovernanceError):
        detail["progress"] = dict(error.progress)
    reason = getattr(error, "reason", None)
    if reason is not None:
        detail["reason"] = reason
    return {"error": detail}


def encode(payload: Dict[str, Any]) -> bytes:
    """Serialize a response body (non-JSON values fall back to ``str``)."""
    return json.dumps(payload, default=str, separators=(",", ":")).encode("utf-8")


def parse_json(body: bytes) -> Dict[str, Any]:
    """Decode a request body into a JSON object, or raise 400."""
    if not body:
        raise ProtocolError("request body is empty; expected a JSON object")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"request body is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _optional_number(payload: Dict[str, Any], field: str) -> Optional[float]:
    value = payload.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{field!r} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ProtocolError(f"{field!r} must be non-negative, got {value!r}")
    return float(value)


def _optional_count(payload: Dict[str, Any], field: str) -> Optional[int]:
    value = _optional_number(payload, field)
    return None if value is None else int(value)


@dataclass(frozen=True)
class QueryRequest:
    """A validated ``POST /query`` body.

    ``statement`` is the SQL/PGQ text; ``params`` binds its ``:name``
    slots; ``timeout_ms`` / ``max_output_rows`` / ``max_intermediate``
    overlay the service's default :class:`QueryBudget` per request.
    """

    statement: str
    params: Optional[Dict[str, Any]]
    timeout_ms: Optional[float]
    max_output_rows: Optional[int]
    max_intermediate: Optional[int]
    dry_run: bool = False

    _KNOWN_FIELDS = frozenset(
        {
            "statement",
            "params",
            "timeout_ms",
            "max_output_rows",
            "max_intermediate",
            "dry_run",
        }
    )

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "QueryRequest":
        unknown = sorted(set(payload) - cls._KNOWN_FIELDS)
        if unknown:
            raise ProtocolError(f"unknown query field(s): {', '.join(unknown)}")
        statement = payload.get("statement")
        if not isinstance(statement, str) or not statement.strip():
            raise ProtocolError("'statement' must be a non-empty string")
        params = payload.get("params")
        if params is not None and not isinstance(params, dict):
            raise ProtocolError(
                f"'params' must be an object of named bindings, got "
                f"{type(params).__name__}"
            )
        dry_run = payload.get("dry_run", False)
        if not isinstance(dry_run, bool):
            raise ProtocolError(
                f"'dry_run' must be a boolean, got {type(dry_run).__name__}"
            )
        return cls(
            statement=statement,
            params=dict(params) if params else None,
            timeout_ms=_optional_number(payload, "timeout_ms"),
            max_output_rows=_optional_count(payload, "max_output_rows"),
            max_intermediate=_optional_count(payload, "max_intermediate"),
            dry_run=dry_run,
        )

    def budget(self, *, default_timeout_ms: Optional[float] = None) -> Optional[QueryBudget]:
        """The per-request governance budget (None when ungoverned).

        The request's ``timeout_ms`` wins over the service default; the
        database's own ``default_budget`` still overlays underneath when
        the connection executes.
        """
        timeout_ms = self.timeout_ms if self.timeout_ms is not None else default_timeout_ms
        if (
            timeout_ms is None
            and self.max_output_rows is None
            and self.max_intermediate is None
        ):
            return None
        return QueryBudget(
            timeout_s=None if timeout_ms is None else timeout_ms / 1000.0,
            max_output_rows=self.max_output_rows,
            max_intermediate=self.max_intermediate,
        )


def dry_run_response(
    *,
    schema: List[Tuple[str, str]],
    diagnostics: List[Dict[str, Any]],
    parameters: Dict[str, str],
    statically_empty: bool,
    elapsed_ms: float,
    engine: str,
    snapshot: str,
) -> Dict[str, Any]:
    """The ``POST /query`` 200 body for ``dry_run: true``.

    No rows: the statement is analyzed and compiled but never executed.
    ``schema`` is the analyzer's inferred ``[column, type]`` result
    signature, ``diagnostics`` the structured analysis findings
    (:meth:`~repro.analysis.diagnostics.Diagnostic.to_payload` dicts),
    ``parameters`` the inferred ``:name -> type`` bindings signature, and
    ``statically_empty`` the dataflow verdict — ``true`` means executing
    the statement would short-circuit without touching the engine.
    """
    return {
        "dry_run": True,
        "schema": [list(entry) for entry in schema],
        "diagnostics": diagnostics,
        "parameters": parameters,
        "statically_empty": statically_empty,
        "elapsed_ms": round(elapsed_ms, 3),
        "engine": engine,
        "snapshot": snapshot,
    }


def query_response(
    *,
    columns: List[str],
    rows: List[List[Any]],
    elapsed_ms: float,
    engine: str,
    snapshot: str,
    streamed: bool,
) -> Dict[str, Any]:
    """The ``POST /query`` 200 body."""
    return {
        "columns": columns,
        "rows": rows,
        "row_count": len(rows),
        "elapsed_ms": round(elapsed_ms, 3),
        "engine": engine,
        "snapshot": snapshot,
        "streamed": streamed,
    }
