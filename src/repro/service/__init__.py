"""``repro.service`` — a concurrent graph query service over the catalog.

The PR-5 architecture (immutable snapshots, thread-safe connections,
shared exactly-once materialization) is the substrate; this package
serves it: a single-node HTTP/JSON query service with a sized pool of
per-snapshot connections, graceful snapshot handoff on DDL, per-request
governance (deadlines, budgets, admission → 408/413/429) and Prometheus
metrics.

Layering: ``repro.service`` sits on top of engine, governance and
observability — nothing inside ``repro`` imports it back (enforced by
the SERVICE-LAYERING lint rule), and the top-level ``repro`` package
does not re-export it.  Import it explicitly::

    from repro.service import Server
    server = Server(db, port=8080)
    server.start()          # or .serve_forever(), or `python -m repro.service`

Run ``python -m repro.service --help`` for the standalone CLI.
"""

from repro.service.app import QueryService
from repro.service.client import QueryResponse, ServiceClient, ServiceError
from repro.service.http import Server
from repro.service.pool import ConnectionPool
from repro.service.protocol import ProtocolError, QueryRequest

__all__ = [
    "ConnectionPool",
    "ProtocolError",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "Server",
    "ServiceClient",
    "ServiceError",
]
