"""HTTP/1.1 transport for the query service (stdlib ``http.server``).

A :class:`Server` wraps a :class:`~repro.service.app.QueryService` in a
``ThreadingHTTPServer``: one OS thread per live client connection, with
keep-alive (``protocol_version = HTTP/1.1`` plus explicit
``Content-Length`` on every response) so load generators reuse sockets
instead of paying a TCP handshake per request.  The handler is a thin
adapter — all routing, error mapping and measurement live in
:meth:`QueryService.handle`, which tests can drive without sockets.
"""

from __future__ import annotations

import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.engine.database import Database
from repro.service.app import QueryService

__all__ = ["Server"]

_LOGGER = logging.getLogger("repro.service.http")

#: Responses with these statuses close the connection: the governance
#: rejections (408/429) tell well-behaved clients to back off, and
#: dropping the socket makes the shed load real instead of queueing the
#: next request on the same keep-alive connection.
_CLOSE_ON = frozenset({408, 429, 499, 503})


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1.0"

    def _serve(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length > 0 else b""
        service: QueryService = self.server.service  # type: ignore[attr-defined]
        status, content_type, payload = service.handle(self.command, self.path, body)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        if status in _CLOSE_ON:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(payload)

    do_GET = _serve
    do_POST = _serve
    do_PUT = _serve
    do_DELETE = _serve

    def log_message(self, format: str, *args: Any) -> None:
        _LOGGER.debug("%s %s", self.address_string(), format % args)


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Restarts in quick succession (tests, CI) must not hit TIME_WAIT.
    allow_reuse_address = True
    #: socketserver's default listen backlog is 5; a burst of concurrent
    #: clients (the load benchmark opens 100 sockets at once) would see
    #: connection resets before a worker thread ever accepts.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], service: QueryService):
        super().__init__(address, _Handler)
        self.service = service


class Server:
    """The query service bound to a listening socket.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  :meth:`start` serves from a daemon thread and
    returns immediately; :meth:`serve_forever` serves on the calling
    thread (the CLI path).  Stopping closes the service's pool but not
    the database — the caller owns that.
    """

    def __init__(
        self,
        database: Database,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_options: Any,
    ):
        self.service = QueryService(database, **service_options)
        self._httpd = _ServiceHTTPServer((host, port), self.service)
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the real one, even when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "Server":
        """Serve from a background daemon thread; returns immediately."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-service",
                daemon=True,
            )
            self._thread.start()
            _LOGGER.info("serving on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (CLI path)."""
        _LOGGER.info("serving on %s", self.url)
        self._httpd.serve_forever(poll_interval=0.05)

    def stop(self) -> None:
        """Stop accepting, join the serving thread, close the pool."""
        if self._stopped:
            return
        self._stopped = True
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        self.service.close()

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
