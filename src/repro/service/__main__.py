"""CLI entrypoint: ``python -m repro.service`` (or the ``repro-service``
console script).

Builds a :class:`~repro.engine.database.Database` — from a bundled
synthetic dataset (``--dataset bank|social``) and/or a DDL script file —
and serves it over HTTP until interrupted::

    python -m repro.service --dataset bank --accounts 200 --transfers 800 \\
        --port 8080 --engine planned --pool-size 8 --max-concurrent 16

``--script`` takes a file of semicolon-separated ``CREATE PROPERTY
GRAPH`` statements applied after the dataset loads, so a custom graph
can be served without writing Python.  Governance flags map straight
onto the database: ``--timeout-ms`` is the default per-request deadline
(requests may override it per call), ``--max-concurrent`` arms
admission control (excess load answers 429).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional, Sequence

from repro.datasets import (
    SocialNetworkConfig,
    TransferWorkloadConfig,
    generate_iban_database,
    generate_social_database,
)
from repro.engine.database import Database
from repro.service.http import Server

__all__ = ["build_database", "main"]

_LOGGER = logging.getLogger("repro.service.cli")

TRANSFERS_DDL = """
CREATE PROPERTY GRAPH Transfers (
  NODES TABLE Account KEY (iban) LABEL Account,
  EDGES TABLE Transfer KEY (t_id)
    SOURCE KEY src_iban REFERENCES Account
    TARGET KEY tgt_iban REFERENCES Account
    LABELS Transfer PROPERTIES (ts, amount))
"""

SOCIAL_DDL = """
CREATE PROPERTY GRAPH SocialGraph (
  NODES TABLE Person KEY (person_id) LABEL Person PROPERTIES (name, city),
  EDGES TABLE Knows KEY (knows_id)
    SOURCE KEY src_id REFERENCES Person
    TARGET KEY tgt_id REFERENCES Person
    LABEL Knows PROPERTIES (since))
"""

#: Column names of the relational datasets (the generators return
#: positional relations; the catalog wants named columns).
_BANK_COLUMNS = {
    "Account": ["iban"],
    "Transfer": ["t_id", "src_iban", "tgt_iban", "ts", "amount"],
}
_SOCIAL_COLUMNS = {
    "Person": ["person_id", "name", "city"],
    "Post": ["post_id", "author_id", "length"],
    "Knows": ["knows_id", "src_id", "tgt_id", "since"],
    "Likes": ["likes_id", "person_id", "post_id"],
}


def _load_bank(database: Database, args: argparse.Namespace) -> None:
    config = TransferWorkloadConfig(
        accounts=args.accounts, transfers=args.transfers, seed=args.seed
    )
    relational = generate_iban_database(config)
    for name, columns in _BANK_COLUMNS.items():
        database.create_table(name, columns, relational.relation(name).rows)
    database.execute(TRANSFERS_DDL)


def _load_social(database: Database, args: argparse.Namespace) -> None:
    config = SocialNetworkConfig(seed=args.seed)
    relational = generate_social_database(config)
    for name, columns in _SOCIAL_COLUMNS.items():
        database.create_table(name, columns, relational.relation(name).rows)
    database.execute(SOCIAL_DDL)


def _apply_script(database: Database, path: str) -> None:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    for statement in text.split(";"):
        statement = statement.strip()
        if statement:
            definition = database.execute(statement)
            _LOGGER.info("applied DDL: graph %s", definition.name)


def build_database(args: argparse.Namespace) -> Database:
    """The catalog the service serves, per the CLI flags."""
    database = Database(
        slow_query_seconds=args.slow_query_ms / 1000.0 if args.slow_query_ms else None,
        max_concurrent_queries=args.max_concurrent,
        max_admission_queue=args.admission_queue,
        admission_timeout_s=args.admission_timeout_s,
    )
    if args.dataset == "bank":
        _load_bank(database, args)
    elif args.dataset == "social":
        _load_social(database, args)
    if args.script:
        _apply_script(database, args.script)
    return database


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Serve a repro graph catalog over HTTP/JSON.",
    )
    serve = parser.add_argument_group("serving")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 binds an ephemeral port")
    serve.add_argument("--engine", default="planned", help="backend for pooled connections")
    serve.add_argument("--pool-size", type=int, default=8, help="connections per snapshot")
    data = parser.add_argument_group("data")
    data.add_argument(
        "--dataset",
        choices=("bank", "social", "none"),
        default="bank",
        help="bundled synthetic dataset to load (default: bank)",
    )
    data.add_argument("--accounts", type=int, default=200)
    data.add_argument("--transfers", type=int, default=800)
    data.add_argument("--seed", type=int, default=7)
    data.add_argument("--script", help="file of semicolon-separated DDL statements")
    governance = parser.add_argument_group("governance")
    governance.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="default per-request deadline (requests may override)",
    )
    governance.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help="admission control: queries executing at once (429 beyond)",
    )
    governance.add_argument("--admission-queue", type=int, default=None)
    governance.add_argument("--admission-timeout-s", type=float, default=5.0)
    governance.add_argument(
        "--slow-query-ms", type=float, default=None, help="arm the slow-query log"
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(list(argv) if argv is not None else None)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    database = build_database(args)
    graphs: List[str] = sorted(database.snapshot().catalog.names())
    server = Server(
        database,
        host=args.host,
        port=args.port,
        engine=args.engine,
        pool_size=args.pool_size,
        default_timeout_ms=args.timeout_ms,
    )
    _LOGGER.info(
        "catalog v%d ready (graphs: %s); serving on %s",
        database.version,
        ", ".join(graphs) or "none",
        server.url,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        _LOGGER.info("interrupted; shutting down")
    finally:
        server.stop()
        database.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
