"""A sized pool of per-snapshot connections with graceful DDL handoff.

The pool is the service's concurrency substrate.  Every pooled
:class:`~repro.engine.session.Connection` is pinned to one immutable
:class:`~repro.engine.database.Snapshot`, so all connections of a
*generation* share the snapshot-scoped caches (materialized views,
compact encodings, plan caches) through the database's exactly-once
:class:`~repro.engine.database.SnapshotCache`.

DDL moves the catalog to a new version.  The pool reacts with a
**graceful handoff**: the current generation is retired — its idle
connections close immediately, its leased connections finish their
in-flight queries on the pinned snapshot and close on release — while a
fresh generation serves every new acquire from the new snapshot.  No
request is interrupted and no request observes a half-updated catalog.

Retired connections close with ``drain=False``: any streamed result a
consumer abandoned mid-read has its live cursor released right away
(subsequent fetches raise :class:`~repro.errors.ConnectionClosedError`)
instead of being silently materialized into a buffer nobody reads.

Pool exhaustion raises :class:`~repro.errors.AdmissionTimeoutError` —
the same governance error the database's admission controller uses — so
the service maps both to HTTP 429.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import monotonic
from typing import Any, Dict, Iterator, List, Optional

from repro.engine.database import Database, Snapshot
from repro.engine.session import Connection
from repro.errors import AdmissionTimeoutError, ConnectionClosedError

__all__ = ["ConnectionPool"]


class _Generation:
    """Connections pinned to one snapshot, with lease accounting."""

    __slots__ = ("snapshot", "free", "opened", "leases", "retired")

    def __init__(self, snapshot: Snapshot):
        self.snapshot = snapshot
        #: Idle connections ready to lease.
        self.free: List[Connection] = []
        #: Connections in existence (idle + leased).
        self.opened = 0
        #: Connections currently leased out.
        self.leases = 0
        #: True once a handoff (or pool close) superseded this generation.
        self.retired = False


class ConnectionPool:
    """A bounded pool of :class:`Connection` handles over one database.

    ``size`` caps the connections per generation; connections open
    lazily on demand and are reused in LIFO order (the most recently
    used connection has the warmest statement LRU).  ``acquire`` blocks
    up to ``acquire_timeout_s`` when every connection is leased, then
    raises :class:`AdmissionTimeoutError`.

    The pool notices catalog version drift on every acquire (covering
    DDL applied directly to the ``Database``, not just through the
    service) and can be told explicitly via :meth:`refresh`.
    """

    def __init__(
        self,
        database: Database,
        *,
        engine: str = "planned",
        size: int = 8,
        acquire_timeout_s: float = 5.0,
        max_repetitions: Optional[int] = None,
        **engine_options: Any,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self._database = database
        self._engine = engine
        self._size = size
        self._acquire_timeout_s = acquire_timeout_s
        self._max_repetitions = max_repetitions
        self._engine_options = dict(engine_options)
        self._cond = threading.Condition()
        self._closed = False
        self._generation = _Generation(database.snapshot())
        #: Retired generations still holding leased connections.
        self._retired: List[_Generation] = []
        self._handoffs = 0
        self._opened_total = 0
        self._closed_total = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Maximum connections per generation."""
        return self._size

    @property
    def engine(self) -> str:
        """Backend name pooled connections dispatch to."""
        return self._engine

    @property
    def snapshot(self) -> Snapshot:
        """The snapshot new acquires are served from."""
        with self._cond:
            return self._generation.snapshot

    def stats(self) -> Dict[str, Any]:
        """Point-in-time pool counters (exported as service gauges)."""
        with self._cond:
            generation = self._generation
            return {
                "size": self._size,
                "available": len(generation.free),
                "in_flight": generation.leases,
                "version": generation.snapshot.version,
                "snapshot": generation.snapshot.fingerprint,
                "handoffs": self._handoffs,
                "opened_total": self._opened_total,
                "closed_total": self._closed_total,
                "retired_open": sum(g.opened for g in self._retired),
            }

    # ------------------------------------------------------------------ #
    # Leasing
    # ------------------------------------------------------------------ #
    @contextmanager
    def acquire(self, timeout_s: Optional[float] = None) -> Iterator[Connection]:
        """Lease a connection pinned to the current snapshot.

        The lease lasts for the ``with`` block; consume any streamed
        result before release (a retired connection's pending streams
        close when it is recycled).
        """
        generation, connection = self._lease(timeout_s)
        try:
            yield connection
        finally:
            self._release(generation, connection)

    def _lease(self, timeout_s: Optional[float]):
        budget = self._acquire_timeout_s if timeout_s is None else timeout_s
        deadline = monotonic() + budget
        with self._cond:
            while True:
                self._check_open()
                self._refresh_locked()
                generation = self._generation
                if generation.free:
                    connection = generation.free.pop()
                    generation.leases += 1
                    return generation, connection
                if generation.opened < self._size:
                    generation.opened += 1
                    generation.leases += 1
                    break  # open a fresh connection outside the lock
                remaining = deadline - monotonic()
                if remaining <= 0.0:
                    raise AdmissionTimeoutError(
                        f"connection pool exhausted: all {self._size} "
                        f"connections stayed leased past {budget:.3f}s",
                        progress={
                            "pool_size": self._size,
                            "in_flight": generation.leases,
                            "waited_s": round(budget, 6),
                        },
                    )
                self._cond.wait(remaining)
        try:
            connection = self._connect(generation.snapshot)
        except BaseException:
            with self._cond:
                generation.opened -= 1
                generation.leases -= 1
                self._cond.notify()
            raise
        with self._cond:
            self._opened_total += 1
        return generation, connection

    def _release(self, generation: _Generation, connection: Connection) -> None:
        close = False
        with self._cond:
            generation.leases -= 1
            if generation.retired or self._closed:
                generation.opened -= 1
                self._closed_total += 1
                close = True
                if generation.opened == 0 and generation in self._retired:
                    self._retired.remove(generation)
            else:
                generation.free.append(connection)
            self._cond.notify()
        if close:
            connection.close(reason="snapshot retired", drain=False)

    def _connect(self, snapshot: Snapshot) -> Connection:
        return self._database.connect(
            engine=self._engine,
            snapshot=snapshot,
            max_repetitions=self._max_repetitions,
            **self._engine_options,
        )

    # ------------------------------------------------------------------ #
    # Handoff / lifecycle
    # ------------------------------------------------------------------ #
    def refresh(self) -> bool:
        """Hand off to the database's current snapshot if it moved.

        Returns True when a handoff happened.  Idle connections of the
        superseded generation close immediately; leased ones finish
        their in-flight work on the old snapshot and close on release.
        """
        with self._cond:
            self._check_open()
            return self._refresh_locked()

    def _refresh_locked(self) -> bool:
        generation = self._generation
        if self._database.version == generation.snapshot.version:
            return False
        snapshot = self._database.snapshot()
        generation.retired = True
        stale, generation.free = generation.free, []
        generation.opened -= len(stale)
        self._closed_total += len(stale)
        if generation.opened > 0:
            self._retired.append(generation)
        self._generation = _Generation(snapshot)
        self._handoffs += 1
        self._cond.notify_all()
        # Handoffs are rare (one per DDL): closing the handful of idle
        # connections under the condition keeps the accounting atomic.
        for connection in stale:
            connection.close(reason="snapshot retired", drain=False)
        return True

    def close(self) -> None:
        """Retire every generation and close all idle connections.

        Leased connections close as their leases release; further
        acquires raise :class:`ConnectionClosedError`.  Idempotent.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            generations = [self._generation] + self._retired
            stale: List[Connection] = []
            for generation in generations:
                generation.retired = True
                stale.extend(generation.free)
                generation.opened -= len(generation.free)
                self._closed_total += len(generation.free)
                generation.free = []
            self._retired = [g for g in generations if g.opened > 0]
            self._cond.notify_all()
        for connection in stale:
            connection.close(reason="pool closed", drain=False)

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError("connection pool is closed", reason="pool closed")

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
