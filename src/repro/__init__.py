"""repro — executable reproduction of *On the Expressiveness of Languages for
Querying Property Graphs in Relational Databases* (PODS 2025).

The package implements, from scratch:

* the property graph data model with n-ary identifiers (Def. 2.1, Sec. 5);
* a relational substrate (relations, schemas, databases, relational algebra);
* the pattern language and its endpoint / path semantics (Figs. 1, 2, 6);
* the ``pgView`` family and the three PGQ fragments ``PGQro`` / ``PGQrw`` /
  ``PGQext`` with their evaluator (Figs. 3, 4, Defs. 3.1-5.3);
* first-order logic with transitive closure and its finite-model evaluators;
* the constructive translations PGQext <-> FO[TC] (Thms. 6.1/6.2);
* a SQL/PGQ surface parser, a session API, and a SQLite-backed engine;
* the separating queries of Theorems 4.1, 4.2, 5.2 and Example 5.3;
* workload generators and complexity instrumentation.

Quickstart::

    from repro import PGQSession

    session = PGQSession()
    session.register_table("Account", ["iban"], [("A1",), ("A2",)])
    session.register_table(
        "Transfer",
        ["t_id", "src_iban", "tgt_iban", "ts", "amount"],
        [("T1", "A1", "A2", 1, 250)],
    )
    session.execute('''
        CREATE PROPERTY GRAPH Transfers (
          NODES TABLE Account KEY (iban) LABEL Account,
          EDGES TABLE Transfer KEY (t_id)
            SOURCE KEY src_iban REFERENCES Account
            TARGET KEY tgt_iban REFERENCES Account
            LABELS Transfer PROPERTIES (ts, amount))
    ''')
    result = session.execute('''
        SELECT * FROM GRAPH_TABLE ( Transfers
          MATCH (x) -[t:Transfer]->+ (y)
          WHERE t.amount > 100
          COLUMNS (x.iban, y.iban) )
    ''')
"""

from repro.engine import (
    Connection,
    Explain,
    NaiveEngine,
    PGQSession,
    PlannedEngine,
    PreparedStatement,
    QueryResult,
    SQLiteEngine,
    Snapshot,
    SnapshotCache,
    available_engines,
    create_engine,
    register_engine,
)
from repro.engine.database import Database as GraphDatabase
from repro.errors import (
    ArityError,
    BindingError,
    EngineError,
    FragmentError,
    GraphError,
    LogicError,
    ParseError,
    PatternError,
    QueryError,
    ReproError,
    SchemaError,
    TranslationError,
    ViewError,
)
from repro.graph import PropertyGraph
from repro.parameters import Parameter
from repro.pgq import (
    Fragment,
    PGQEvaluator,
    classify,
    evaluate,
    evaluate_boolean,
    graph_pattern_on_relations,
    pg_view,
    pg_view_ext,
    pg_view_n,
)
from repro.relational import Database, Relation, Schema
from repro.translations import translate_formula, translate_query

__version__ = "1.0.0"

__all__ = [
    "ArityError",
    "BindingError",
    "Connection",
    "Database",
    "Explain",
    "EngineError",
    "Fragment",
    "FragmentError",
    "GraphDatabase",
    "GraphError",
    "LogicError",
    "NaiveEngine",
    "PGQEvaluator",
    "PGQSession",
    "Parameter",
    "PlannedEngine",
    "PreparedStatement",
    "ParseError",
    "PatternError",
    "PropertyGraph",
    "QueryError",
    "QueryResult",
    "Relation",
    "ReproError",
    "SQLiteEngine",
    "Schema",
    "SchemaError",
    "Snapshot",
    "SnapshotCache",
    "TranslationError",
    "ViewError",
    "available_engines",
    "classify",
    "create_engine",
    "evaluate",
    "evaluate_boolean",
    "graph_pattern_on_relations",
    "pg_view",
    "pg_view_ext",
    "pg_view_n",
    "register_engine",
    "translate_formula",
    "translate_query",
    "__version__",
]
