"""Static analysis subsystem: semantic analyzer, dataflow, plan verifier.

* :mod:`repro.analysis.semantic` — resolves labels, properties, graph and
  table names against the catalog schema, infers parameter types and the
  result schema, and rejects ill-formed statements before compilation
  with position-carrying diagnostics;
* :mod:`repro.analysis.dataflow` — abstract interpretation over the
  logical plan IR: satisfiability pruning (``prune_unsatisfiable``),
  emptiness/cartesian/quantifier warnings (A008+), and the
  statically-empty verdict the session layer short-circuits on;
* :mod:`repro.analysis.verifier` — checks structural invariants on every
  optimizer rewrite and logical->physical lowering, enabled via
  ``Database(verify_plans=True)`` or ``REPRO_VERIFY_PLANS=1``;
* :mod:`repro.analysis.diagnostics` — the diagnostic record and the
  stable error-code registry with per-code default severities.
"""

from repro.analysis.dataflow import (
    PlanDataflow,
    analyze_plan,
    condition_satisfiable,
    plan_parameters,
    prune_unsatisfiable,
)
from repro.analysis.diagnostics import (
    ERROR_CODES,
    WARNING_CODES,
    Diagnostic,
    default_severity,
)
from repro.analysis.semantic import (
    GraphSchemaSummary,
    QueryAnalysis,
    analyze_ddl,
    analyze_query,
    graph_schema_summary,
    strict_analysis_enabled,
)
from repro.analysis.verifier import (
    check_plan_sanity,
    condition_atoms,
    contains_empty,
    physical_variables,
    verification_enabled,
    verify_physical_result,
    verify_rewrite,
)

__all__ = [
    "Diagnostic",
    "ERROR_CODES",
    "GraphSchemaSummary",
    "PlanDataflow",
    "QueryAnalysis",
    "WARNING_CODES",
    "analyze_ddl",
    "analyze_plan",
    "analyze_query",
    "check_plan_sanity",
    "condition_atoms",
    "condition_satisfiable",
    "contains_empty",
    "default_severity",
    "graph_schema_summary",
    "physical_variables",
    "plan_parameters",
    "prune_unsatisfiable",
    "strict_analysis_enabled",
    "verification_enabled",
    "verify_physical_result",
    "verify_rewrite",
]
