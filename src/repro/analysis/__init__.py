"""Static analysis subsystem: semantic analyzer and plan verifier.

* :mod:`repro.analysis.semantic` — resolves labels, properties, graph and
  table names against the catalog schema, infers parameter types, and
  rejects ill-formed statements before compilation with
  position-carrying diagnostics;
* :mod:`repro.analysis.verifier` — checks structural invariants on every
  optimizer rewrite and logical->physical lowering, enabled via
  ``Database(verify_plans=True)`` or ``REPRO_VERIFY_PLANS=1``;
* :mod:`repro.analysis.diagnostics` — the diagnostic record and the
  stable error-code registry.
"""

from repro.analysis.diagnostics import ERROR_CODES, Diagnostic
from repro.analysis.semantic import (
    GraphSchemaSummary,
    QueryAnalysis,
    analyze_ddl,
    analyze_query,
    graph_schema_summary,
)
from repro.analysis.verifier import (
    check_plan_sanity,
    condition_atoms,
    physical_variables,
    verification_enabled,
    verify_physical_result,
    verify_rewrite,
)

__all__ = [
    "Diagnostic",
    "ERROR_CODES",
    "GraphSchemaSummary",
    "QueryAnalysis",
    "analyze_ddl",
    "analyze_query",
    "check_plan_sanity",
    "condition_atoms",
    "graph_schema_summary",
    "physical_variables",
    "verification_enabled",
    "verify_physical_result",
    "verify_rewrite",
]
