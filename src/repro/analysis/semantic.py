"""Semantic analyzer for SQL/PGQ statements (parse -> analyze -> compile).

The analyzer sits between the parser and the compiler: it resolves every
graph name, label, property key and view column against the catalog's
schema, checks pattern variables and projection arities, and infers types
for ``:name`` parameters from the properties and literals they are
compared with — rejecting ill-formed statements with position-carrying
:class:`~repro.analysis.diagnostics.Diagnostic` collections *before* any
plan is built, instead of today's mid-execution failures.

Schema resolution is a pure function of the graph definition, so the
per-definition summary is memoized (id-keyed with a weakref guard, like
``repro.pgq.queries.query_parameters``): the per-statement cost is one
small AST walk, which keeps the analyzer inside the prepare-time budget
enforced by ``benchmarks/bench_planner.py`` (``analysis_gate``).
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.errors import AnalysisError, PGQAnalysisError, SchemaError
from repro.relational.schema import Schema
from repro.sqlpgq.ast import (
    BooleanExpression,
    Comparison,
    ConditionExpr,
    CreatePropertyGraph,
    GraphTableQuery,
    LabelTest,
    LiteralOperand,
    NodeElement,
    ParameterOperand,
    PropertyOperand,
)
from repro.sqlpgq.catalog import GraphCatalog, GraphDefinition

#: Inferred value types.  The lattice is flat: ``number`` and ``string``
#: conflict, ``any`` is compatible with both.
NUMBER = "number"
STRING = "string"
ANY = "any"

#: Rows sampled per property column when inferring types from data.
_TYPE_SAMPLE_LIMIT = 20

_TRUTHY = {"1", "true", "yes", "on"}


def strict_analysis_enabled(flag: Optional[bool] = None) -> bool:
    """Whether analyzer warnings are promoted to hard failures: an
    explicit flag (``Database(strict_analysis=...)`` /
    ``connect(strict_analysis=...)``) wins, otherwise the
    ``REPRO_STRICT_ANALYSIS`` environment variable decides — the same
    contract as :func:`repro.analysis.verifier.verification_enabled`."""
    if flag is not None:
        return flag
    return os.environ.get("REPRO_STRICT_ANALYSIS", "").strip().lower() in _TRUTHY


# --------------------------------------------------------------------------- #
# Graph schema summaries
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GraphSchemaSummary:
    """Labels and property keys a graph definition exposes, by element kind."""

    node_labels: FrozenSet[str]
    edge_labels: FrozenSet[str]
    node_properties: FrozenSet[str]
    edge_properties: FrozenSet[str]
    #: property key -> ((table, column), ...) sources, for type inference.
    property_sources: Mapping[str, Tuple[Tuple[str, str], ...]]

    @property
    def labels(self) -> FrozenSet[str]:
        return self.node_labels | self.edge_labels

    @property
    def properties(self) -> FrozenSet[str]:
        return self.node_properties | self.edge_properties


def _exposed_properties(schema: Schema, table: str, declared: Tuple[str, ...]) -> Tuple[str, ...]:
    # Mirrors the catalog's "PROPERTIES ARE ALL COLUMNS" default.
    if declared:
        return declared
    try:
        return tuple(schema.relation(table).columns)
    except SchemaError:
        return ()


def _build_summary(definition: GraphDefinition, schema: Schema) -> GraphSchemaSummary:
    statement = definition.statement
    node_labels: set = set()
    edge_labels: set = set()
    node_properties: set = set()
    edge_properties: set = set()
    sources: Dict[str, List[Tuple[str, str]]] = {}
    for spec in statement.node_tables:
        node_labels.update(spec.labels)
        for column in _exposed_properties(schema, spec.table, spec.properties):
            node_properties.add(column)
            sources.setdefault(column, []).append((spec.table, column))
    for spec in statement.edge_tables:
        edge_labels.update(spec.labels)
        for column in _exposed_properties(schema, spec.table, spec.properties):
            edge_properties.add(column)
            sources.setdefault(column, []).append((spec.table, column))
    return GraphSchemaSummary(
        frozenset(node_labels),
        frozenset(edge_labels),
        frozenset(node_properties),
        frozenset(edge_properties),
        {key: tuple(pairs) for key, pairs in sources.items()},
    )


#: Bounded ``id(definition) -> (weakref(definition), summary)`` memo; the
#: weakref guards against id reuse after garbage collection.
_SUMMARY_MEMO: "OrderedDict[int, Tuple[weakref.ref, GraphSchemaSummary]]" = OrderedDict()
_SUMMARY_MEMO_LIMIT = 128
_SUMMARY_MEMO_LOCK = threading.Lock()


def graph_schema_summary(definition: GraphDefinition, schema: Schema) -> GraphSchemaSummary:
    """The (memoized) label/property summary of a compiled graph definition."""
    key = id(definition)
    with _SUMMARY_MEMO_LOCK:
        cached = _SUMMARY_MEMO.get(key)
        if cached is not None:
            ref, summary = cached
            if ref() is definition:
                _SUMMARY_MEMO.move_to_end(key)
                return summary
            del _SUMMARY_MEMO[key]
    summary = _build_summary(definition, schema)
    with _SUMMARY_MEMO_LOCK:
        _SUMMARY_MEMO[key] = (weakref.ref(definition), summary)
        while len(_SUMMARY_MEMO) > _SUMMARY_MEMO_LIMIT:
            _SUMMARY_MEMO.popitem(last=False)
    return summary


# --------------------------------------------------------------------------- #
# Type inference
# --------------------------------------------------------------------------- #
def _classify_value(value: object) -> str:
    if isinstance(value, bool):
        return ANY
    if isinstance(value, (int, float)):
        return NUMBER
    if isinstance(value, str):
        return STRING
    return ANY


def _literal_type(value: object) -> str:
    return _classify_value(value)


def _property_type(
    summary: GraphSchemaSummary,
    key: str,
    database,  # Optional[repro.relational.database.Database]
) -> str:
    """Type of a property key, sampled from the backing table columns."""
    if database is None:
        return ANY
    seen: set = set()
    for table, column in summary.property_sources.get(key, ()):
        try:
            relation = database.relation(table)
            index = database.schema.relation(table).column_index(column) - 1
        except (KeyError, SchemaError):
            continue
        for row in islice(relation.rows, _TYPE_SAMPLE_LIMIT):
            seen.add(_classify_value(row[index]))
    seen.discard(ANY)
    if len(seen) == 1:
        return seen.pop()
    return ANY


# --------------------------------------------------------------------------- #
# Query analysis
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class QueryAnalysis:
    """The analyzer's verdict on one query statement."""

    diagnostics: Tuple[Diagnostic, ...] = ()
    #: ``:name`` -> inferred type ("number" | "string" | "any").
    parameter_types: Mapping[str, str] = field(default_factory=dict)
    #: Inferred result schema: ``(column name, type)`` per output column,
    #: in projection order.  Types are the flat value lattice plus
    #: ``"node id"`` / ``"edge id"`` for identifier outputs.
    result_schema: Tuple[Tuple[str, str], ...] = ()

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self, *, strict: bool = False) -> "QueryAnalysis":
        """Raise on error diagnostics; under ``strict`` also promote
        warning-severity findings to :class:`PGQAnalysisError`."""
        errors = self.errors
        if errors:
            raise AnalysisError(errors)
        if strict and self.diagnostics:
            raise PGQAnalysisError(self.diagnostics)
        return self

    def merged(self, extra: Tuple[Diagnostic, ...]) -> "QueryAnalysis":
        """This analysis with ``extra`` diagnostics appended (plan-level
        dataflow findings attach to the front-end verdict this way)."""
        if not extra:
            return self
        return QueryAnalysis(
            self.diagnostics + tuple(extra),
            dict(self.parameter_types),
            self.result_schema,
        )


def _known_hint(kind: str, known: FrozenSet[str], limit: int = 6) -> Optional[str]:
    if not known:
        return None
    names = sorted(known)
    shown = ", ".join(names[:limit])
    if len(names) > limit:
        shown += ", ..."
    return f"known {kind}: {shown}"


def _position(node) -> Tuple[Optional[int], Optional[int]]:
    position = getattr(node, "position", None)
    if position is None:
        return (None, None)
    return position


def _conjuncts(condition: Optional[ConditionExpr]) -> List[ConditionExpr]:
    """Top-level positive conjuncts of a WHERE clause (nothing under OR/NOT)."""
    if condition is None:
        return []
    if isinstance(condition, BooleanExpression) and condition.operator == "AND":
        result: List[ConditionExpr] = []
        for operand in condition.operands:
            result.extend(_conjuncts(operand))
        return result
    return [condition]


def _walk_condition(condition: ConditionExpr):
    """Every Comparison / LabelTest in a condition tree (any polarity)."""
    if isinstance(condition, BooleanExpression):
        for operand in condition.operands:
            yield from _walk_condition(operand)
    else:
        yield condition


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _statically_false(left: object, operator: str, right: object) -> bool:
    try:
        if operator == "=":
            return not left == right
        if operator == "!=":
            return not left != right
        if operator == "<":
            return not left < right
        if operator == "<=":
            return not left <= right
        if operator == ">":
            return not left > right
        if operator == ">=":
            return not left >= right
    except TypeError:
        # Cross-type ordered comparisons never hold at runtime either
        # (PropertyCompare.satisfied treats TypeError as False).
        return True
    return False


class _QueryAnalyzer:
    def __init__(
        self,
        query: GraphTableQuery,
        catalog: GraphCatalog,
        database=None,
    ) -> None:
        self.query = query
        self.catalog = catalog
        self.database = database
        self.diagnostics: List[Diagnostic] = []
        self.summary: Optional[GraphSchemaSummary] = None
        #: variable -> "node" | "edge"
        self.kinds: Dict[str, str] = {}
        self.parameter_types: Dict[str, str] = {}
        #: parameter name -> (type, line, column) of the first inference.
        self._first_inference: Dict[str, Tuple[str, Optional[int], Optional[int]]] = {}

    def diag(self, code: str, message: str, node, hint: Optional[str] = None) -> None:
        line, column = _position(node)
        self.diagnostics.append(Diagnostic(code, message, line, column, hint))

    # ------------------------------------------------------------------ #
    def run(self) -> QueryAnalysis:
        self._resolve_graph()
        self._collect_variables()
        self._check_elements()
        self._check_condition()
        self._check_columns()
        self._check_select_list()
        self._check_satisfiability()
        return QueryAnalysis(
            tuple(self.diagnostics),
            dict(self.parameter_types),
            self._infer_result_schema(),
        )

    def _infer_result_schema(self) -> Tuple[Tuple[str, str], ...]:
        """``(name, type)`` per output column, honoring the outer SELECT list."""
        columns = list(self.query.columns)
        if self.query.select_items and not self.query.select_star:
            by_name = {column.name: column for column in columns}
            columns = [by_name[item] for item in self.query.select_items if item in by_name]
        schema: List[Tuple[str, str]] = []
        for column in columns:
            if column.key is None:
                kind = self.kinds.get(column.variable)
                inferred = f"{kind} id" if kind in ("node", "edge") else "id"
            elif self.summary is not None:
                inferred = _property_type(self.summary, column.key, self.database)
            else:
                inferred = ANY
            schema.append((column.name, inferred))
        return tuple(schema)

    # ------------------------------------------------------------------ #
    def _resolve_graph(self) -> None:
        name = self.query.graph_name
        if name in self.catalog:
            definition = self.catalog.get(name)
            self.summary = graph_schema_summary(definition, self.catalog.schema)
            return
        self.diag(
            "A001",
            f"no property graph named {name!r} has been created",
            self.query,
            hint=_known_hint("graphs", frozenset(self.catalog.names())),
        )

    def _collect_variables(self) -> None:
        for element in self.query.elements:
            if element.variable is None:
                continue
            kind = "node" if isinstance(element, NodeElement) else "edge"
            self.kinds.setdefault(element.variable, kind)

    # ------------------------------------------------------------------ #
    def _check_label(self, label: str, kind: Optional[str], node) -> None:
        if self.summary is None:
            return
        if kind == "node":
            known = self.summary.node_labels
        elif kind == "edge":
            known = self.summary.edge_labels
        else:
            known = self.summary.labels
        if label not in known:
            what = f"{kind} " if kind in ("node", "edge") else ""
            self.diag(
                "A002",
                f"graph {self.query.graph_name!r} defines no {what}label {label!r}",
                node,
                hint=_known_hint(f"{what}labels", known),
            )

    def _check_property(self, variable: str, key: str, node) -> None:
        if self.summary is None:
            return
        kind = self.kinds.get(variable)
        if kind == "node":
            known = self.summary.node_properties
        elif kind == "edge":
            known = self.summary.edge_properties
        else:
            known = self.summary.properties
        if key not in known:
            what = f"{kind} elements of " if kind in ("node", "edge") else ""
            self.diag(
                "A003",
                f"{what}graph {self.query.graph_name!r} expose no property {key!r}",
                node,
                hint=_known_hint("properties", known),
            )

    def _check_variable(self, variable: str, node) -> None:
        if variable not in self.kinds:
            self.diag(
                "A004",
                f"variable {variable!r} is not bound by the MATCH pattern",
                node,
                hint=_known_hint("pattern variables", frozenset(self.kinds)),
            )

    # ------------------------------------------------------------------ #
    def _check_elements(self) -> None:
        for element in self.query.elements:
            kind = "node" if isinstance(element, NodeElement) else "edge"
            for label in element.labels:
                self._check_label(label, kind, element)

    def _check_condition(self) -> None:
        if self.query.condition is None:
            return
        for atom in _walk_condition(self.query.condition):
            if isinstance(atom, LabelTest):
                self._check_variable(atom.variable, atom)
                if atom.variable in self.kinds:
                    self._check_label(atom.label, self.kinds.get(atom.variable), atom)
                continue
            if not isinstance(atom, Comparison):
                continue
            for operand in (atom.left, atom.right):
                if isinstance(operand, PropertyOperand):
                    self._check_variable(operand.variable, operand)
                    if operand.variable in self.kinds:
                        self._check_property(operand.variable, operand.key, operand)
            self._infer_parameter_types(atom)

    def _check_columns(self) -> None:
        for column in self.query.columns:
            self._check_variable(column.variable, column)
            if column.key is not None and column.variable in self.kinds:
                self._check_property(column.variable, column.key, column)

    def _check_select_list(self) -> None:
        query = self.query
        if query.select_star or not query.select_items:
            return
        output_names = {column.name for column in query.columns}
        if len(query.select_items) != len(query.columns):
            self.diag(
                "A005",
                f"outer SELECT projects {len(query.select_items)} column(s) but the "
                f"COLUMNS clause produces {len(query.columns)}",
                query,
                hint="project * or list exactly the COLUMNS outputs",
            )
        for item in query.select_items:
            if item not in output_names:
                self.diag(
                    "A005",
                    f"outer SELECT references {item!r}, which the COLUMNS clause "
                    "does not produce",
                    query,
                    hint=_known_hint("output columns", frozenset(output_names)),
                )

    # ------------------------------------------------------------------ #
    def _infer_parameter_types(self, comparison: Comparison) -> None:
        left, right = comparison.left, comparison.right
        for operand, other in ((left, right), (right, left)):
            if not isinstance(operand, ParameterOperand):
                continue
            if isinstance(other, PropertyOperand):
                inferred = (
                    _property_type(self.summary, other.key, self.database)
                    if self.summary is not None
                    else ANY
                )
            elif isinstance(other, LiteralOperand):
                inferred = _literal_type(other.value)
            else:
                inferred = ANY
            self._record_parameter(operand, inferred)

    def _record_parameter(self, operand: ParameterOperand, inferred: str) -> None:
        name = operand.name
        current = self.parameter_types.get(name, ANY)
        if name not in self._first_inference or (
            self._first_inference[name][0] == ANY and inferred != ANY
        ):
            line, column = _position(operand)
            self._first_inference[name] = (inferred, line, column)
        if current == ANY:
            self.parameter_types[name] = inferred
            return
        if inferred == ANY or inferred == current:
            return
        first_type, first_line, first_column = self._first_inference[name]
        where = ""
        if first_line is not None:
            where = f" (first inferred {first_type} at line {first_line}, column {first_column})"
        self.diag(
            "A006",
            f"parameter :{name} is compared as {inferred} here but as {current} "
            f"elsewhere{where}",
            operand,
            hint="bind the parameter against operands of one type",
        )

    # ------------------------------------------------------------------ #
    def _check_satisfiability(self) -> None:
        equalities: Dict[Tuple[str, str], Tuple[object, object]] = {}
        for atom in _conjuncts(self.query.condition):
            if not isinstance(atom, Comparison):
                continue
            left, right = atom.left, atom.right
            operator = atom.operator
            if isinstance(left, LiteralOperand) and isinstance(right, LiteralOperand):
                if _statically_false(left.value, operator, right.value):
                    self.diag(
                        "A007",
                        f"comparison {left.value!r} {operator} {right.value!r} "
                        "is never satisfied",
                        atom,
                        hint="remove the contradiction or fix the literal",
                    )
                continue
            # Normalize to property-on-the-left for the remaining checks.
            if isinstance(right, PropertyOperand) and isinstance(left, LiteralOperand):
                left, right = right, left
                operator = _FLIPPED.get(operator, operator)
            if not (isinstance(left, PropertyOperand) and isinstance(right, LiteralOperand)):
                continue
            self._check_property_literal(atom, left, operator, right)

            if operator == "=":
                key = (left.variable, left.key)
                if key in equalities:
                    previous, _ = equalities[key]
                    if type(previous) is type(right.value) and previous != right.value:
                        self.diag(
                            "A007",
                            f"{left.variable}.{left.key} cannot equal both "
                            f"{previous!r} and {right.value!r}",
                            atom,
                            hint="use OR for alternative values",
                        )
                else:
                    equalities[key] = (right.value, atom)

    def _check_property_literal(
        self, atom: Comparison, prop: PropertyOperand, operator: str, literal: LiteralOperand
    ) -> None:
        if operator == "!=" or self.summary is None:
            # ``!=`` holds for any defined value of a different type.
            return
        property_type = _property_type(self.summary, prop.key, self.database)
        literal_type = _literal_type(literal.value)
        if ANY in (property_type, literal_type) or property_type == literal_type:
            return
        self.diag(
            "A007",
            f"{prop.variable}.{prop.key} holds {property_type} values; comparing "
            f"with {literal.value!r} ({literal_type}) is never satisfied",
            atom,
            hint="compare the property against a value of its own type",
        )


#: Bounded memo of *successful* analyses.  The key is the statement itself
#: (AST nodes are frozen dataclasses with structural hashing, and position
#: fields are ``compare=False``, so re-parsing the same text hits) plus the
#: identities of the catalog/database; the weakrefs guard against id reuse
#: after garbage collection.  Failing analyses are never cached so their
#: diagnostics always carry the positions of the statement actually parsed.
_ANALYSIS_MEMO: "OrderedDict[Tuple[GraphTableQuery, int, int], Tuple[weakref.ref, Optional[weakref.ref], QueryAnalysis]]" = OrderedDict()
_ANALYSIS_MEMO_LIMIT = 256
_ANALYSIS_MEMO_LOCK = threading.Lock()


def analyze_query(
    query: GraphTableQuery,
    catalog: GraphCatalog,
    database=None,
) -> QueryAnalysis:
    """Analyze one query against a catalog (and optionally its data).

    Collects *every* diagnostic rather than stopping at the first; callers
    reject via :meth:`QueryAnalysis.raise_if_failed`.  Successful analyses
    are memoized per (statement, catalog, database), so re-preparing a
    statement costs a structural hash instead of a full re-analysis.
    """
    key: Optional[Tuple[GraphTableQuery, int, int]]
    key = (query, id(catalog), id(database))
    with _ANALYSIS_MEMO_LOCK:
        try:
            cached = _ANALYSIS_MEMO.get(key)
        except TypeError:  # hand-built AST holding an unhashable literal
            key = None
            cached = None
        if cached is not None:
            catalog_ref, database_ref, analysis = cached
            live = catalog_ref() is catalog and (
                database is None if database_ref is None else database_ref() is database
            )
            if live:
                _ANALYSIS_MEMO.move_to_end(key)
                return analysis
            del _ANALYSIS_MEMO[key]
    analysis = _QueryAnalyzer(query, catalog, database).run()
    if key is not None and not analysis.diagnostics:
        with _ANALYSIS_MEMO_LOCK:
            _ANALYSIS_MEMO[key] = (
                weakref.ref(catalog),
                None if database is None else weakref.ref(database),
                analysis,
            )
            while len(_ANALYSIS_MEMO) > _ANALYSIS_MEMO_LIMIT:
                _ANALYSIS_MEMO.popitem(last=False)
    return analysis


# --------------------------------------------------------------------------- #
# DDL analysis
# --------------------------------------------------------------------------- #
def analyze_ddl(statement: CreatePropertyGraph, schema: Schema) -> Tuple[Diagnostic, ...]:
    """Diagnostics for a CREATE PROPERTY GRAPH statement against a schema.

    The catalog's own lowering rejects the same problems one at a time with
    :class:`SchemaError`; this pass reports all of them with positions.
    """
    diagnostics: List[Diagnostic] = []
    tables = frozenset(schema.names())

    def check_table(spec) -> bool:
        if spec.table in tables:
            return True
        line, column = _position(spec)
        diagnostics.append(
            Diagnostic(
                "A001",
                f"schema has no table named {spec.table!r}",
                line,
                column,
                _known_hint("tables", tables),
            )
        )
        return False

    def check_columns(spec, columns: Tuple[str, ...]) -> None:
        relation = schema.relation(spec.table)
        line, column_no = _position(spec)
        for column in columns:
            if relation.columns and column not in relation.columns:
                diagnostics.append(
                    Diagnostic(
                        "A003",
                        f"table {spec.table!r} has no column {column!r}",
                        line,
                        column_no,
                        _known_hint("columns", frozenset(relation.columns)),
                    )
                )

    arities: Dict[int, str] = {}
    for spec in statement.node_tables + statement.edge_tables:
        arities.setdefault(len(spec.key_columns), spec.table)
        if check_table(spec):
            check_columns(spec, spec.key_columns + spec.properties)

    if len(arities) > 1:
        line, column = _position(statement)
        diagnostics.append(
            Diagnostic(
                "A005",
                f"property graph {statement.name!r} mixes key arities "
                f"{sorted(arities)}; one identifier arity is required",
                line,
                column,
                "give every table key the same number of columns",
            )
        )
        identifier_arity: Optional[int] = None
    else:
        identifier_arity = next(iter(arities), None)

    for spec in statement.edge_tables:
        if spec.table in tables:
            check_columns(spec, spec.source_columns + spec.target_columns)
        if identifier_arity is not None:
            for label, columns in (("source", spec.source_columns), ("target", spec.target_columns)):
                if len(columns) != identifier_arity:
                    line, column = _position(spec)
                    diagnostics.append(
                        Diagnostic(
                            "A005",
                            f"edge table {spec.table!r} references its {label} with "
                            f"{len(columns)} column(s) but the graph's identifier "
                            f"arity is {identifier_arity}",
                            line,
                            column,
                            "endpoint references must match the node key arity",
                        )
                    )
    return tuple(diagnostics)


__all__ = [
    "ANY",
    "NUMBER",
    "STRING",
    "GraphSchemaSummary",
    "QueryAnalysis",
    "analyze_ddl",
    "analyze_query",
    "graph_schema_summary",
    "strict_analysis_enabled",
]
