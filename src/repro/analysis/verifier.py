"""Plan-invariant verifier for the rule-based optimizer and the executor.

Every optimizer rewrite must be semantics-preserving; this module checks
the *structural* part of that contract after each pass and at the
logical->physical boundary:

* **schema preservation** — the variable set a plan binds is unchanged by
  ``push_down_filters`` / ``order_joins`` / ``simplify``; pruning may only
  drop variables nothing above consumes (``after`` is a subset of
  ``before`` and keeps everything in ``needed``);
* **no dropped filters** — the set of condition atoms (residual filter
  conjuncts, scan conditions, and scan label sets normalized back to
  ``HasLabel`` atoms) survives every rewrite;
* **operator sanity** — union arms both bind every variable consumed
  above the union (asymmetry beyond that is pruning residue the physical
  union projects away), fixpoint bounds satisfy ``0 <= lower <= upper``,
  and filter conditions reference only variables their operand binds;
* **column provenance** — a physical binding table's column map names
  exactly the columns the executor materializes for the plan
  (:func:`physical_variables`) with in-range row indices.

Verification is off by default; it is enabled per database with
``Database(verify_plans=True)`` or globally with ``REPRO_VERIFY_PLANS=1``
(the CI full-suite job runs under the latter).  A violation raises
:class:`~repro.errors.PlanVerificationError` — a raise always means an
optimizer bug, never a user error.
"""

from __future__ import annotations

import os
from typing import FrozenSet, Hashable, Optional, Set, Tuple

from repro.errors import PlanVerificationError
from repro.patterns.conditions import HasLabel
from repro.planner.logical import (
    BindEndpoint,
    EdgeScan,
    EmptyPlan,
    FilterStep,
    FixpointStep,
    JoinStep,
    LogicalPlan,
    NodeScan,
    UnionStep,
)

_TRUTHY = {"1", "true", "yes", "on"}

#: Physical rows sampled per table for the width/provenance check.
_ROW_SAMPLE_LIMIT = 100


def verification_enabled(flag: Optional[bool] = None) -> bool:
    """Whether plan verification is on: an explicit flag wins, otherwise
    the ``REPRO_VERIFY_PLANS`` environment variable decides."""
    if flag is not None:
        return flag
    return os.environ.get("REPRO_VERIFY_PLANS", "").strip().lower() in _TRUTHY


# --------------------------------------------------------------------------- #
# Condition atoms
# --------------------------------------------------------------------------- #
def condition_atoms(plan: LogicalPlan) -> FrozenSet[Hashable]:
    """Every filter atom a plan applies, wherever a rewrite may have moved it.

    ``HasLabel`` conjuncts and scan label sets are normalized to the same
    ``("label", var, label)`` form because pushdown folds the former into
    the latter; all other conditions are hashable frozen dataclasses and
    represent themselves.  Atoms are a *set*: pushdown through a union
    legitimately duplicates a conjunct into both arms.
    """
    from repro.planner.rules import split_conjuncts

    atoms: Set[Hashable] = set()

    def add(conjunct) -> None:
        if isinstance(conjunct, HasLabel):
            atoms.add(("label", conjunct.var, conjunct.label))
            return
        try:
            atoms.add(conjunct)
        except TypeError:
            # Conditions over unhashable constants (e.g. a list literal)
            # are legal and uncacheable; compare them by repr, which for
            # the frozen condition dataclasses is structural.
            atoms.add(("repr", repr(conjunct)))

    def visit(node: LogicalPlan) -> None:
        if isinstance(node, (NodeScan, EdgeScan)):
            for label in node.labels:
                atoms.add(("label", node.variable, label))
            if node.condition is not None:
                for conjunct in split_conjuncts(node.condition):
                    add(conjunct)
            return
        if isinstance(node, FilterStep):
            for conjunct in split_conjuncts(node.condition):
                add(conjunct)
        for child in node.children():
            visit(child)

    visit(plan)
    return frozenset(atoms)


# --------------------------------------------------------------------------- #
# Per-node structural sanity
# --------------------------------------------------------------------------- #
def physical_variables(plan: LogicalPlan) -> FrozenSet[str]:
    """The column set the executor materializes for a plan.

    Identical to :meth:`~repro.planner.logical.LogicalPlan.variables`
    except at unions: variables bound in only one arm are pruning residue
    (kept for a branch-internal filter), and the physical union operator
    projects both arms to their *overlap* before combining rows.
    """
    if isinstance(plan, UnionStep):
        return physical_variables(plan.left) & physical_variables(plan.right)
    if isinstance(plan, FilterStep):
        return physical_variables(plan.operand)
    if isinstance(plan, BindEndpoint):
        return physical_variables(plan.operand) | {plan.variable}
    if isinstance(plan, FixpointStep):
        return frozenset()
    children = plan.children()
    if children:
        result: FrozenSet[str] = frozenset()
        for child in children:
            result |= physical_variables(child)
        return result
    return plan.variables()


def check_plan_sanity(
    rule: str, plan: LogicalPlan, needed: FrozenSet[str] = frozenset()
) -> None:
    """Operator invariants that must hold for *any* well-formed plan.

    ``needed`` is the variable set the enclosing operators consume — the
    same contract :func:`~repro.planner.rules.prune_variables` descends
    with — so the check tracks which bindings each sub-plan must provide.
    """
    if isinstance(plan, UnionStep):
        common = physical_variables(plan.left) & physical_variables(plan.right)
        required = needed & plan.variables()
        if not required <= common:
            raise PlanVerificationError(
                rule,
                f"union arms do not both bind consumed variables "
                f"{sorted(required - common)} (the union projects to the "
                "arm overlap, losing them)",
            )
        check_plan_sanity(rule, plan.left, required)
        check_plan_sanity(rule, plan.right, required)
        return
    if isinstance(plan, FixpointStep):
        if plan.lower < 0 or plan.lower > plan.upper:
            raise PlanVerificationError(
                rule,
                f"fixpoint bounds {plan.lower}..{plan.upper} violate "
                "0 <= lower <= upper",
            )
        # Repetition erases its body's bindings: nothing above can
        # consume them.
        check_plan_sanity(rule, plan.body, frozenset())
        return
    if isinstance(plan, FilterStep):
        missing = plan.condition.variables() - plan.operand.variables()
        if missing:
            raise PlanVerificationError(
                rule,
                f"filter references variables {sorted(missing)} its operand "
                "does not bind",
            )
        check_plan_sanity(rule, plan.operand, needed | plan.condition.variables())
        return
    if isinstance(plan, BindEndpoint):
        if plan.variable in plan.operand.variables():
            raise PlanVerificationError(
                rule,
                f"endpoint binding shadows variable {plan.variable!r} already "
                "bound by its operand",
            )
        check_plan_sanity(rule, plan.operand, needed - {plan.variable})
        return
    if isinstance(plan, JoinStep):
        shared = plan.left.variables() & plan.right.variables()
        check_plan_sanity(rule, plan.left, (needed | shared) & plan.left.variables())
        check_plan_sanity(rule, plan.right, (needed | shared) & plan.right.variables())
        return
    for child in plan.children():
        check_plan_sanity(rule, child, needed)


# --------------------------------------------------------------------------- #
# Rewrite verification
# --------------------------------------------------------------------------- #
def contains_empty(plan: LogicalPlan) -> bool:
    """Whether a plan contains any :class:`EmptyPlan` leaf."""
    if isinstance(plan, EmptyPlan):
        return True
    return any(contains_empty(child) for child in plan.children())


def verify_rewrite(
    rule: str,
    before: LogicalPlan,
    after: LogicalPlan,
    needed: FrozenSet[str],
    *,
    may_prune: bool = False,
    may_empty: bool = False,
) -> LogicalPlan:
    """Check one logical->logical rewrite; returns ``after`` on success.

    With ``may_prune`` the rewrite may drop variables nothing needs (the
    pruning pass); otherwise the bound variable set must be preserved
    exactly.  Condition atoms must survive every pass — except under
    ``may_empty`` (the satisfiability-pruning pass), where atoms of a
    subplan proved empty legitimately vanish with it; the relaxation only
    applies when the rewritten plan actually carries an ``EmptyPlan``
    leaf standing in for the eliminated subplan.
    """
    before_vars = before.variables()
    after_vars = after.variables()
    if may_prune:
        if not after_vars <= before_vars:
            raise PlanVerificationError(
                rule,
                f"rewrite invented variables {sorted(after_vars - before_vars)}",
            )
        required = needed & before_vars
        if not required <= after_vars:
            raise PlanVerificationError(
                rule,
                f"rewrite dropped needed variables {sorted(required - after_vars)}",
            )
    elif before_vars != after_vars:
        raise PlanVerificationError(
            rule,
            f"rewrite changed the bound variable set {sorted(before_vars)} -> "
            f"{sorted(after_vars)}",
        )
    missing = condition_atoms(before) - condition_atoms(after)
    if missing and not (may_empty and contains_empty(after)):
        raise PlanVerificationError(
            rule, f"rewrite dropped {len(missing)} filter atom(s): {sorted(map(repr, missing))}"
        )
    check_plan_sanity(rule, after, needed)
    return after


# --------------------------------------------------------------------------- #
# Logical -> physical verification
# --------------------------------------------------------------------------- #
def verify_physical_result(plan: LogicalPlan, columns, rows) -> None:
    """Check a physical binding table against its logical plan's schema.

    ``columns`` maps each bound variable to its index in the row tuples
    ``(src, tgt, extras...)``; the map must name exactly the plan's
    variables and every index must be in range for every (sampled) row.
    """
    expected = physical_variables(plan)
    actual = frozenset(columns)
    if actual != expected:
        raise PlanVerificationError(
            "physical lowering",
            f"binding table columns {sorted(actual)} do not match the plan's "
            f"variables {sorted(expected)}",
        )
    indices: Tuple[int, ...] = tuple(columns.values())
    if len(set(indices)) != len(indices):
        raise PlanVerificationError(
            "physical lowering",
            f"binding table maps two variables to one row index: {dict(columns)}",
        )
    checked = 0
    for row in rows:
        if len(row) < 2:
            raise PlanVerificationError(
                "physical lowering",
                f"row {row!r} is narrower than the (src, tgt) endpoint prefix",
            )
        for variable, index in columns.items():
            if not 0 <= index < len(row):
                raise PlanVerificationError(
                    "physical lowering",
                    f"column {variable!r} points at index {index} of a "
                    f"{len(row)}-wide row",
                )
        checked += 1
        if checked >= _ROW_SAMPLE_LIMIT:
            break


__all__ = [
    "check_plan_sanity",
    "condition_atoms",
    "contains_empty",
    "physical_variables",
    "verification_enabled",
    "verify_physical_result",
    "verify_rewrite",
]
