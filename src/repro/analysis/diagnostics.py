"""Position-carrying diagnostics for the static analysis subsystem.

Every analyzer rejection is a :class:`Diagnostic` with a stable error
code, a message, the source span of the offending construct, and (where
the fix is mechanical) a hint.  Diagnostics render deterministically so
tests can pin them in a golden file; the codes themselves are documented
in :data:`ERROR_CODES` (mirrored in the README's error-code table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

#: Stable error codes raised by the semantic analyzer.  Codes are part of
#: the public surface (tests and downstream tooling match on them): never
#: renumber, only append.
ERROR_CODES: Mapping[str, str] = {
    "A001": "unknown graph or table name",
    "A002": "unknown label",
    "A003": "unknown property key or column",
    "A004": "unbound variable",
    "A005": "arity mismatch",
    "A006": "parameter type conflict",
    "A007": "never-satisfiable predicate",
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding: code, message, source span, optional hint."""

    code: str
    message: str
    line: Optional[int] = None
    column: Optional[int] = None
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def span(self) -> Optional[Tuple[int, int]]:
        """``(line, column)`` of the offending construct, when known."""
        if self.line is None:
            return None
        return (self.line, self.column if self.column is not None else 1)

    def render(self) -> str:
        location = ""
        if self.line is not None:
            location = f" at line {self.line}"
            if self.column is not None:
                location += f", column {self.column}"
        text = f"{self.code}: {self.message}{location}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def __str__(self) -> str:
        return self.render()


__all__ = ["Diagnostic", "ERROR_CODES"]
