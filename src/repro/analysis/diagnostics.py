"""Position-carrying diagnostics for the static analysis subsystem.

Every analyzer rejection is a :class:`Diagnostic` with a stable error
code, a message, the source span of the offending construct, and (where
the fix is mechanical) a hint.  Diagnostics render deterministically so
tests can pin them in a golden file; the codes themselves are documented
in :data:`ERROR_CODES` (mirrored in the README's error-code table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

#: Stable error codes raised by the semantic analyzer.  Codes are part of
#: the public surface (tests and downstream tooling match on them): never
#: renumber, only append.
ERROR_CODES: Mapping[str, str] = {
    "A001": "unknown graph or table name",
    "A002": "unknown label",
    "A003": "unknown property key or column",
    "A004": "unbound variable",
    "A005": "arity mismatch",
    "A006": "parameter type conflict",
    "A007": "never-satisfiable predicate",
    # A008+ are produced by the plan-level abstract interpreter
    # (repro.analysis.dataflow), not the front-end semantic analyzer.
    # They default to "warning" severity: the query is well-formed, the
    # dataflow pass merely proved something suspicious about what it can
    # return.  ``strict_analysis`` promotes them to errors.
    "A008": "statically-empty subplan",
    "A009": "contradictory predicate",
    "A010": "cartesian product between pattern variables",
    "A011": "unused parameter binding",
    "A012": "quantifier bound exceeds graph diameter",
    "A013": "label matches no graph element",
    "A014": "provably unreachable pattern endpoints",
}

#: Codes whose findings default to ``warning`` severity (the dataflow
#: codes): the statement still prepares and executes unless
#: ``strict_analysis`` promotes them.  A001–A007 stay hard errors.
WARNING_CODES = frozenset(
    {"A008", "A009", "A010", "A011", "A012", "A013", "A014"}
)

#: The two diagnostic severities, in increasing order of gravity.
SEVERITIES = ("warning", "error")


def default_severity(code: str) -> str:
    """The severity a diagnostic of ``code`` carries unless overridden."""
    return "warning" if code in WARNING_CODES else "error"


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding: code, message, source span, optional hint.

    ``severity`` defaults per code (A001–A007 are errors, the dataflow
    codes A008–A014 are warnings) and is carried structurally — the
    rendered text is unchanged for error-severity findings so the golden
    diagnostics stay stable.
    """

    code: str
    message: str
    line: Optional[int] = None
    column: Optional[int] = None
    hint: Optional[str] = None
    severity: str = ""

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if not self.severity:
            object.__setattr__(self, "severity", default_severity(self.code))
        elif self.severity not in SEVERITIES:
            raise ValueError(f"unknown diagnostic severity {self.severity!r}")

    @property
    def span(self) -> Optional[Tuple[int, int]]:
        """``(line, column)`` of the offending construct, when known."""
        if self.line is None:
            return None
        return (self.line, self.column if self.column is not None else 1)

    def render(self) -> str:
        location = ""
        if self.line is not None:
            location = f" at line {self.line}"
            if self.column is not None:
                location += f", column {self.column}"
        prefix = "warning " if self.severity == "warning" else ""
        text = f"{prefix}{self.code}: {self.message}{location}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def __str__(self) -> str:
        return self.render()

    def to_payload(self) -> dict:
        """JSON-ready structured form (service dry-run, Explain payloads)."""
        payload = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.line is not None:
            payload["line"] = self.line
        if self.column is not None:
            payload["column"] = self.column
        if self.hint:
            payload["hint"] = self.hint
        return payload


__all__ = [
    "Diagnostic",
    "ERROR_CODES",
    "SEVERITIES",
    "WARNING_CODES",
    "default_severity",
]
