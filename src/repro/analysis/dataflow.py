"""Plan-level abstract interpretation over the logical plan IR.

The semantic analyzer (:mod:`repro.analysis.semantic`) validates a
statement against the catalog *schema*; this module reasons about what an
optimized plan can actually *produce*.  It walks the plan with small
abstract domains:

* **label sets** — scan label sets checked against per-graph statistics
  (:class:`~repro.planner.stats.GraphStatistics`): a label with zero
  carriers makes the scan provably empty (A013);
* **constant/range lattices** — the property-comparison conjuncts that
  filter pushdown folded into a scan (or left in a residual filter) are
  intersected per ``(variable, key)``; an empty intersection is a
  contradiction (A009), and the subplan under it can yield no rows;
* **reachability upper bounds** — CSR degree data from the compact
  encoding bounds how deep a repetition can usefully iterate: a finite
  quantifier bound beyond the graph-diameter bound is vacuous (A012),
  and a join of two unbounded closures approaches a cartesian product
  of endpoints (A010).

Facts compose bottom-up: an empty operand makes a join empty, an empty
repetition body with ``lower >= 1`` makes the fixpoint empty, and so on.
Provably-empty subplans are replaced by
:class:`~repro.planner.logical.EmptyPlan` leaves carrying the schema the
subplan would have bound — :func:`prune_unsatisfiable` is the optimizer
entry point for that rewrite, and every application is checked by the
plan-invariant verifier (``verify_rewrite(..., may_empty=True)``).

Everything here is *static*: no relation is evaluated and no view is
materialized, so the pass stays inside the prepare-time budget enforced
by ``benchmarks/bench_planner.py`` (``dataflow_gate``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.verifier import physical_variables
from repro.parameters import Parameter
from repro.patterns.conditions import (
    OrCondition,
    PatternCondition,
    PropertyCompare,
    PropertyComparesProperty,
)
from repro.planner.logical import (
    BindEndpoint,
    EdgeScan,
    EmptyPlan,
    FilterStep,
    FixpointStep,
    JoinStep,
    LogicalPlan,
    NodeScan,
    UnionStep,
)
from repro.planner.rules import split_conjuncts

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.graph.compact import CompactGraph
    from repro.planner.stats import GraphStatistics

_UNSET = object()

#: Comparison operators that can never hold between a property and itself.
_IRREFLEXIVE = frozenset({"<", ">", "!="})


# --------------------------------------------------------------------------- #
# The constant/range lattice
# --------------------------------------------------------------------------- #
class Interval:
    """Abstract value of one ``(variable, key)`` under a conjunction.

    Tracks the tightest lower/upper bound, a required equality, and
    excluded values.  ``empty`` means no runtime value can satisfy every
    constraint — including the cross-type cases: an ordered comparison
    against an incomparable constant raises ``TypeError`` at runtime,
    which the evaluator treats as *false*, so two ordered constraints
    whose constants are mutually incomparable (``x.k > 5 AND x.k < 'a'``)
    admit no value of any type.
    """

    __slots__ = ("lower", "upper", "equals", "excluded", "empty")

    def __init__(self) -> None:
        self.lower: Optional[Tuple[object, bool]] = None  # (value, strict)
        self.upper: Optional[Tuple[object, bool]] = None
        self.equals: object = _UNSET
        self.excluded: List[object] = []
        self.empty = False

    def add(self, operator: str, value: object) -> None:
        if self.empty:
            return
        if operator == "=":
            if self.equals is not _UNSET and not self.equals == value:
                self.empty = True
            else:
                self.equals = value
        elif operator == "!=":
            self.excluded.append(value)
        elif operator in ("<", "<="):
            self._tighten_upper(value, operator == "<")
        elif operator in (">", ">="):
            self._tighten_lower(value, operator == ">")
        self._normalize()

    def _tighten_upper(self, value: object, strict: bool) -> None:
        if self.upper is None:
            self.upper = (value, strict)
            return
        current, current_strict = self.upper
        try:
            if value < current or (value == current and strict):
                self.upper = (value, strict)
        except TypeError:
            self.empty = True

    def _tighten_lower(self, value: object, strict: bool) -> None:
        if self.lower is None:
            self.lower = (value, strict)
            return
        current, current_strict = self.lower
        try:
            if value > current or (value == current and strict):
                self.lower = (value, strict)
        except TypeError:
            self.empty = True

    def _normalize(self) -> None:
        if self.empty:
            return
        try:
            if self.equals is not _UNSET:
                if self.upper is not None:
                    value, strict = self.upper
                    if self.equals > value or (strict and self.equals == value):
                        self.empty = True
                if self.lower is not None:
                    value, strict = self.lower
                    if self.equals < value or (strict and self.equals == value):
                        self.empty = True
                if any(self.equals == excluded for excluded in self.excluded):
                    self.empty = True
            if self.lower is not None and self.upper is not None:
                low, low_strict = self.lower
                high, high_strict = self.upper
                if low > high or (low == high and (low_strict or high_strict)):
                    self.empty = True
        except TypeError:
            # Mixed-type bounds: ordered comparisons against incomparable
            # constants are false for every runtime value (see class doc).
            self.empty = True


def conjunction_satisfiable(conjuncts: List[PatternCondition]) -> bool:
    """Whether a conjunction admits *some* variable assignment.

    Sound but incomplete: ``False`` is a proof of emptiness, ``True``
    merely means no contradiction was found.  Parameter slots are opaque
    (any binding could arrive), negations are not interpreted, and
    disjunctions recurse per arm.
    """
    intervals: dict = {}
    for conjunct in conjuncts:
        if isinstance(conjunct, PropertyCompare):
            if isinstance(conjunct.constant, Parameter):
                continue
            interval = intervals.setdefault((conjunct.var, conjunct.key), Interval())
            interval.add(conjunct.operator, conjunct.constant)
            if interval.empty:
                return False
        elif isinstance(conjunct, PropertyComparesProperty):
            if (
                conjunct.left_var == conjunct.right_var
                and conjunct.left_key == conjunct.right_key
                and conjunct.operator in _IRREFLEXIVE
            ):
                return False
        elif isinstance(conjunct, OrCondition):
            if not (
                condition_satisfiable(conjunct.left)
                or condition_satisfiable(conjunct.right)
            ):
                return False
    return True


def condition_satisfiable(condition: Optional[PatternCondition]) -> bool:
    """Whether a condition tree admits some assignment (see above)."""
    if condition is None:
        return True
    return conjunction_satisfiable(split_conjuncts(condition))


# --------------------------------------------------------------------------- #
# Plan parameters (A011 accounting)
# --------------------------------------------------------------------------- #
def plan_parameters(plan: LogicalPlan) -> FrozenSet[str]:
    """Parameter slot names referenced anywhere in a plan's conditions."""
    names: Set[str] = set()

    def visit(node: LogicalPlan) -> None:
        if isinstance(node, (NodeScan, EdgeScan, FilterStep)):
            condition = node.condition
            if condition is not None:
                names.update(condition.parameters())
        for child in node.children():
            visit(child)

    visit(plan)
    return frozenset(names)


# --------------------------------------------------------------------------- #
# Reachability bounds from CSR degree data
# --------------------------------------------------------------------------- #
def diameter_bound(
    stats: "Optional[GraphStatistics]", graph: "Optional[CompactGraph]"
) -> Optional[int]:
    """Upper bound on the length of any shortest path in the graph.

    With the compact encoding, CSR degree data tightens the bound: every
    node on a shortest path except the last has out-degree >= 1, so the
    path cannot be longer than the number of edge-bearing nodes.  With
    statistics only, ``node_count - 1`` is the classic bound.  ``None``
    when neither source is available.
    """
    if graph is not None:
        offsets = graph.forward_csr[0]
        active = sum(
            1 for index in range(len(offsets) - 1) if offsets[index + 1] > offsets[index]
        )
        return active
    if stats is not None:
        return max(0, stats.node_count - 1)
    return None


def _terminal(plan: LogicalPlan, *, source_side: bool) -> LogicalPlan:
    """The leaf operator contributing a join's shared endpoint.

    Follows the target side of the left operand (``source_side=False``)
    or the source side of the right operand, through the wrappers that
    keep endpoints intact."""
    while True:
        if isinstance(plan, (FilterStep, BindEndpoint)):
            plan = plan.operand
        elif isinstance(plan, JoinStep):
            plan = plan.left if source_side else plan.right
        else:
            return plan


# --------------------------------------------------------------------------- #
# The abstract interpreter
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlanDataflow:
    """Everything the dataflow pass learned about one plan."""

    #: The plan with provably-empty subplans replaced by ``EmptyPlan``.
    plan: LogicalPlan
    diagnostics: Tuple[Diagnostic, ...]
    #: The whole plan is provably empty: executing it is pointless.
    statically_empty: bool
    #: Parameter slots that only occurred inside pruned subplans.
    unused_parameters: Tuple[str, ...] = ()

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")


class _PlanInterpreter:
    def __init__(
        self,
        stats: "Optional[GraphStatistics]",
        graph: "Optional[CompactGraph]",
    ) -> None:
        self.stats = stats
        self.graph = graph
        self.diagnostics: List[Diagnostic] = []

    def diag(self, code: str, message: str, hint: Optional[str] = None) -> None:
        self.diagnostics.append(Diagnostic(code, message, hint=hint))

    def _empty(self, plan: LogicalPlan, reason: str) -> EmptyPlan:
        if isinstance(plan, EmptyPlan):
            return plan
        return EmptyPlan(schema=physical_variables(plan), reason=reason)

    # ------------------------------------------------------------------ #
    def prune(self, plan: LogicalPlan) -> LogicalPlan:
        if isinstance(plan, (NodeScan, EdgeScan)):
            return self._prune_scan(plan)
        if isinstance(plan, JoinStep):
            return self._prune_join(plan)
        if isinstance(plan, UnionStep):
            return self._prune_union(plan)
        if isinstance(plan, FilterStep):
            return self._prune_filter(plan)
        if isinstance(plan, BindEndpoint):
            operand = self.prune(plan.operand)
            if isinstance(operand, EmptyPlan):
                return self._empty(plan, operand.reason)
            if operand is plan.operand:
                return plan
            return BindEndpoint(operand, plan.variable, plan.use_source)
        if isinstance(plan, FixpointStep):
            return self._prune_fixpoint(plan)
        return plan

    def _prune_scan(self, plan) -> LogicalPlan:
        stats = self.stats
        if stats is not None:
            on_edges = isinstance(plan, EdgeScan)
            if on_edges and stats.edge_count == 0:
                self.diag(
                    "A014",
                    "the graph has no edges; the pattern's endpoints can "
                    "never be connected",
                    hint="every edge traversal over this graph is empty",
                )
                return self._empty(plan, "edgeless graph: endpoints unreachable")
            for label in sorted(plan.labels):
                carriers = (
                    stats.labeled_edge_count(label)
                    if on_edges
                    else stats.labeled_node_count(label)
                )
                if carriers == 0:
                    kind = "edge" if on_edges else "node"
                    self.diag(
                        "A013",
                        f"label {label!r} matches no {kind} of this graph",
                        hint="the label exists in the schema but has no carriers",
                    )
                    return self._empty(plan, f"no {kind} carries label {label!r}")
        if plan.condition is not None and not condition_satisfiable(plan.condition):
            name = plan.variable or ("edge" if isinstance(plan, EdgeScan) else "node")
            self.diag(
                "A009",
                f"scan condition on {name!r} is contradictory",
                hint="the pushed-down conjuncts admit no property value",
            )
            return self._empty(plan, f"contradictory condition on {name!r}")
        return plan

    def _prune_join(self, plan: JoinStep) -> LogicalPlan:
        left = self.prune(plan.left)
        right = self.prune(plan.right)
        if isinstance(left, EmptyPlan):
            return self._empty(plan, left.reason)
        if isinstance(right, EmptyPlan):
            return self._empty(plan, right.reason)
        left_terminal = _terminal(left, source_side=False)
        right_terminal = _terminal(right, source_side=True)
        if (
            isinstance(left_terminal, FixpointStep)
            and left_terminal.is_unbounded
            and isinstance(right_terminal, FixpointStep)
            and right_terminal.is_unbounded
        ):
            self.diag(
                "A010",
                "two unbounded reachability closures join only on their shared "
                "endpoint; on dense graphs this approaches a cartesian product "
                "of endpoint pairs",
                hint="bound one quantifier or split the query",
            )
        if left is plan.left and right is plan.right:
            return plan
        return JoinStep(left, right)

    def _prune_union(self, plan: UnionStep) -> LogicalPlan:
        left = self.prune(plan.left)
        right = self.prune(plan.right)
        left_empty = isinstance(left, EmptyPlan)
        right_empty = isinstance(right, EmptyPlan)
        if left_empty and right_empty:
            return self._empty(plan, "both union arms are empty")
        if left_empty or right_empty:
            side = "left" if left_empty else "right"
            self.diag(
                "A008",
                f"the {side} union arm can produce no rows",
                hint="every result comes from the other arm",
            )
        if left is plan.left and right is plan.right:
            return plan
        return UnionStep(left, right)

    def _prune_filter(self, plan: FilterStep) -> LogicalPlan:
        operand = self.prune(plan.operand)
        if isinstance(operand, EmptyPlan):
            return self._empty(plan, operand.reason)
        if not condition_satisfiable(plan.condition):
            self.diag(
                "A009",
                "filter condition is contradictory",
                hint="the conjunction admits no property values",
            )
            return self._empty(plan, "contradictory filter")
        if operand is plan.operand:
            return plan
        return FilterStep(operand, plan.condition)

    def _prune_fixpoint(self, plan: FixpointStep) -> LogicalPlan:
        body = self.prune(plan.body)
        bound = diameter_bound(self.stats, self.graph)
        if bound is not None and not plan.is_unbounded and plan.upper > max(bound, 1):
            self.diag(
                "A012",
                f"quantifier upper bound {int(plan.upper)} exceeds the graph "
                f"diameter bound {bound}; iterations beyond it add no pairs",
                hint="use an unbounded quantifier or lower the bound",
            )
        if isinstance(body, EmptyPlan) and plan.lower >= 1:
            # lower == 0 keeps the identity pairs even over an empty body.
            return self._empty(plan, "empty repetition body with lower bound >= 1")
        if body is plan.body:
            return plan
        return FixpointStep(body, plan.lower, plan.upper)


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #
def analyze_plan(
    plan: LogicalPlan,
    *,
    stats: "Optional[GraphStatistics]" = None,
    graph: "Optional[CompactGraph]" = None,
) -> PlanDataflow:
    """Run the abstract interpreter over one logical plan.

    Returns the pruned plan together with every diagnostic the walk
    produced.  ``stats``/``graph`` sharpen the domains (label carrier
    counts, CSR degree bounds); without them only the stats-free facts
    (range contradictions, structural emptiness propagation) fire.
    """
    interpreter = _PlanInterpreter(stats, graph)
    pruned = interpreter.prune(plan)
    diagnostics = interpreter.diagnostics
    statically_empty = isinstance(pruned, EmptyPlan)
    unused: Tuple[str, ...] = ()
    if statically_empty:
        diagnostics.append(
            Diagnostic(
                "A008",
                f"the query is statically empty: {pruned.reason}",
                hint="it will return zero rows without executing",
            )
        )
    else:
        dropped = sorted(plan_parameters(plan) - plan_parameters(pruned))
        for name in dropped:
            diagnostics.append(
                Diagnostic(
                    "A011",
                    f"parameter :{name} only occurs in a pruned subplan; its "
                    "binding is never consulted",
                    hint="remove the parameter or the contradiction around it",
                )
            )
        unused = tuple(dropped)
    return PlanDataflow(pruned, tuple(diagnostics), statically_empty, unused)


def prune_unsatisfiable(
    plan: LogicalPlan,
    stats: "Optional[GraphStatistics]" = None,
    graph: "Optional[CompactGraph]" = None,
) -> LogicalPlan:
    """Optimizer rewrite: replace provably-empty subplans with
    :class:`EmptyPlan` leaves (diagnostics are the session layer's job;
    the optimizer only wants the transformed plan)."""
    return analyze_plan(plan, stats=stats, graph=graph).plan


__all__ = [
    "Interval",
    "PlanDataflow",
    "analyze_plan",
    "condition_satisfiable",
    "conjunction_satisfiable",
    "diameter_bound",
    "plan_parameters",
    "prune_unsatisfiable",
]
