"""Query lifecycle governance: budgets, cancellation, admission, faults.

The governance package is a *leaf* layer (it imports only ``repro.errors``
and the standard library) so every execution layer — the planner's
physical operators, the naive oracle's enumeration loops, the compact
closure kernels, the SQLite backend — can poll it without import cycles:

* :class:`QueryBudget` — declarative limits (deadline, output rows,
  intermediate tuples/mask bits), mergeable database-default + per-call.
* :class:`CancellationToken` — thread-safe, composable (parent/child),
  reason-carrying cooperative cancellation.
* :class:`QueryGovernor` + :func:`current_governor` — the per-execution
  enforcement object, installed in a context variable around each run;
  hot loops poll it every :data:`CHECK_INTERVAL` iterations and stay
  allocation-free when governance is off.
* :class:`AdmissionController` — ``max_concurrent_queries`` slots with a
  bounded wait queue and load shedding.
* :class:`FaultPlan` — the deterministic fault-injection harness
  (``REPRO_FAULTS``) that chaos tests use to prove every checkpoint
  class actually fires.
"""

from repro.governance.admission import AdmissionController
from repro.governance.budget import (
    CHECK_INTERVAL,
    QueryBudget,
    QueryGovernor,
    activate_governor,
    current_governor,
    make_governor,
)
from repro.governance.faults import (
    FaultPlan,
    active_fault_plan,
    clear_fault_plan,
    install_fault_plan,
    parse_fault_spec,
)
from repro.governance.tokens import CancellationToken

__all__ = [
    "AdmissionController",
    "CHECK_INTERVAL",
    "CancellationToken",
    "FaultPlan",
    "QueryBudget",
    "QueryGovernor",
    "activate_governor",
    "active_fault_plan",
    "clear_fault_plan",
    "current_governor",
    "install_fault_plan",
    "make_governor",
    "parse_fault_spec",
]
