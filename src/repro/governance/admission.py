"""Admission control: bounded concurrency with a bounded wait queue.

A :class:`AdmissionController` guards a ``Database`` against overload:
at most ``max_concurrent`` queries execute at once; up to ``max_queue``
more may wait (FIFO via the condition variable) for at most ``timeout_s``
seconds; everything beyond that is rejected immediately with
:class:`~repro.errors.AdmissionTimeoutError` — shedding load instead of
piling it up, which is what a saturated service must do.

The controller is deliberately metrics-friendly: pass the database's
``MetricsRegistry`` (duck-typed — this module imports nothing from
observability) and it maintains ``repro_admission_running`` /
``repro_admission_queued`` gauges plus admitted/rejected counters.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.errors import AdmissionTimeoutError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Semaphore-style slot manager with precise queue accounting."""

    def __init__(
        self,
        max_concurrent: int,
        *,
        max_queue: Optional[int] = None,
        timeout_s: float = 5.0,
        metrics=None,
    ):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.timeout_s = timeout_s
        self._condition = threading.Condition()
        self._running = 0
        self._queued = 0
        self._admitted = 0
        self._rejected = 0
        self._completed = 0
        if metrics is not None:
            self._gauge_running = metrics.gauge(
                "repro_admission_running", help="queries currently executing"
            )
            self._gauge_queued = metrics.gauge(
                "repro_admission_queued", help="queries waiting for admission"
            )
            self._counter_admitted = metrics.counter(
                "repro_admission_admitted_total", help="queries admitted"
            )
            self._counter_rejected = metrics.counter(
                "repro_admission_rejected_total",
                help="queries rejected (queue overflow or admission timeout)",
            )
        else:
            self._gauge_running = None
            self._gauge_queued = None
            self._counter_admitted = None
            self._counter_rejected = None

    # ------------------------------------------------------------------ #
    def _acquire(self, timeout_s: Optional[float]) -> None:
        wait_limit = self.timeout_s if timeout_s is None else timeout_s
        with self._condition:
            if self._running < self.max_concurrent:
                self._admit_locked()
                return
            if self.max_queue is not None and self._queued >= self.max_queue:
                self._rejected += 1
                if self._counter_rejected is not None:
                    self._counter_rejected.inc()
                raise AdmissionTimeoutError(
                    f"admission queue full ({self._queued} waiting, "
                    f"max_queue={self.max_queue}, "
                    f"max_concurrent={self.max_concurrent})"
                )
            self._queued += 1
            if self._gauge_queued is not None:
                self._gauge_queued.set(self._queued)
            deadline = time.monotonic() + wait_limit
            try:
                while self._running >= self.max_concurrent:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._condition.wait(remaining):
                        self._rejected += 1
                        if self._counter_rejected is not None:
                            self._counter_rejected.inc()
                        raise AdmissionTimeoutError(
                            f"no execution slot within {wait_limit}s "
                            f"(max_concurrent={self.max_concurrent})"
                        )
            finally:
                self._queued -= 1
                if self._gauge_queued is not None:
                    self._gauge_queued.set(self._queued)
            self._admit_locked()

    def _admit_locked(self) -> None:
        self._running += 1
        self._admitted += 1
        if self._gauge_running is not None:
            self._gauge_running.set(self._running)
        if self._counter_admitted is not None:
            self._counter_admitted.inc()

    def _release(self) -> None:
        with self._condition:
            self._running -= 1
            self._completed += 1
            if self._gauge_running is not None:
                self._gauge_running.set(self._running)
            self._condition.notify()

    @contextmanager
    def slot(self, timeout_s: Optional[float] = None) -> Iterator[None]:
        """Hold one execution slot for the duration of the block."""
        self._acquire(timeout_s)
        try:
            yield
        finally:
            self._release()

    def stats(self) -> Dict[str, int]:
        """Live accounting; ``running``/``queued`` return to 0 when idle
        (the no-leaked-permits invariant the stress test asserts)."""
        with self._condition:
            return {
                "running": self._running,
                "queued": self._queued,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "completed": self._completed,
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"AdmissionController(max_concurrent={self.max_concurrent}, "
            f"running={stats['running']}, queued={stats['queued']})"
        )
