"""Cooperative, composable cancellation tokens.

A :class:`CancellationToken` is the cross-thread signal of the governance
layer: any thread may :meth:`cancel` it, and the executing query observes
the flag at its next cooperative checkpoint (or, for the SQLite backend,
through an ``interrupt()`` callback registered for the duration of the
statement).  Tokens compose: a :meth:`child` token is cancelled when its
parent is, so a connection-level token can fan out to every statement it
governs while each statement stays individually cancellable.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

__all__ = ["CancellationToken"]


class CancellationToken:
    """Thread-safe, reason-carrying cancellation flag.

    ``cancel()`` is idempotent — the first call wins and records the
    reason; later calls are no-ops.  Callbacks registered through
    :meth:`add_callback` run exactly once, on the cancelling thread (or
    immediately when the token is already cancelled); callback exceptions
    propagate to the canceller, so keep callbacks trivial (the SQLite
    backend registers ``connection.interrupt``).
    """

    __slots__ = ("_lock", "_cancelled", "_reason", "_callbacks", "_parent")

    def __init__(self, parent: Optional["CancellationToken"] = None):
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason: Optional[str] = None
        self._callbacks: List[Callable[[], None]] = []
        self._parent = parent
        if parent is not None:
            # Propagate parent cancellation down: the child cancels (with
            # the parent's reason) the moment the parent does, firing the
            # child's callbacks too.
            parent.add_callback(self._cancel_from_parent)

    def _cancel_from_parent(self) -> None:
        parent = self._parent
        reason = parent.reason if parent is not None else None
        self.cancel(reason or "parent cancelled")

    def cancel(self, reason: str = "cancelled") -> bool:
        """Cancel the token; returns True when this call flipped the flag."""
        with self._lock:
            if self._cancelled:
                return False
            self._cancelled = True
            self._reason = reason
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()
        return True

    def cancelled(self) -> bool:
        """Whether the token (or any ancestor) has been cancelled."""
        if self._cancelled:
            return True
        parent = self._parent
        return parent is not None and parent.cancelled()

    @property
    def reason(self) -> Optional[str]:
        """The first cancellation reason, or None while uncancelled."""
        if self._reason is not None:
            return self._reason
        parent = self._parent
        return parent.reason if parent is not None else None

    def child(self) -> "CancellationToken":
        """A new token cancelled whenever this one is (and independently)."""
        return CancellationToken(parent=self)

    def add_callback(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` on cancellation (immediately if already cancelled)."""
        with self._lock:
            if not self._cancelled:
                self._callbacks.append(callback)
                return
        callback()

    def remove_callback(self, callback: Callable[[], None]) -> None:
        """Unregister a callback previously added (no-op when absent)."""
        with self._lock:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    def __repr__(self) -> str:
        state = f"cancelled: {self._reason!r}" if self._cancelled else "active"
        return f"CancellationToken({state})"
