"""Deterministic fault injection for the governance checkpoints.

The harness exists to *prove* the robustness machinery: tests (and the CI
``chaos-smoke`` job) install a :class:`FaultPlan` that makes a scripted
checkpoint fail, adds latency to every checkpoint, or makes the SQLite
backend see transient ``database is locked`` errors — then assert the
stack degrades exactly as designed (the checkpoint fires, the error maps
into the governance hierarchy, the retry policy absorbs the transient).

Plans are deterministic by construction: failures trigger at an exact
checkpoint ordinal (optionally per site), never at random, so a failing
chaos test replays identically.  ``REPRO_FAULTS`` installs a plan from
the environment without code changes, e.g.::

    REPRO_FAULTS="latency=0.0005"                 # slow every checkpoint
    REPRO_FAULTS="fail_at=3,site=join.probe"      # 3rd probe checkpoint dies
    REPRO_FAULTS="transient=2"                    # two injected lock errors
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

from repro.errors import FaultInjectedError

__all__ = [
    "FaultPlan",
    "active_fault_plan",
    "clear_fault_plan",
    "install_fault_plan",
    "parse_fault_spec",
]


class FaultPlan:
    """One scripted fault scenario, shared by every checkpoint that fires.

    ``latency_s``
        Injected sleep at every checkpoint (chaos smoke: makes real
        scheduling interleavings happen without flaky randomness).
    ``fail_at`` / ``site``
        Raise :class:`~repro.errors.FaultInjectedError` at the N-th
        checkpoint (1-based).  With ``site`` set, only checkpoints of
        that site count toward N — "the 3rd fixpoint round" is
        expressible independently of how many probe checkpoints ran.
    ``transient``
        Number of injected transient SQLite ``database is locked``
        failures handed out by :meth:`take_transient` (the backend's
        retry policy must absorb them).
    """

    __slots__ = ("latency_s", "fail_at", "site", "transient", "_lock", "_seen", "_transients_left")

    def __init__(
        self,
        *,
        latency_s: float = 0.0,
        fail_at: Optional[int] = None,
        site: Optional[str] = None,
        transient: int = 0,
    ):
        self.latency_s = latency_s
        self.fail_at = fail_at
        self.site = site
        self.transient = transient
        self._lock = threading.Lock()
        #: Checkpoints observed, total under the "" key plus one per site.
        self._seen: Dict[str, int] = {"": 0}
        self._transients_left = transient

    def on_checkpoint(self, site: str) -> None:
        """Record one checkpoint; sleep/raise per the scripted scenario."""
        with self._lock:
            self._seen[""] += 1
            self._seen[site] = self._seen.get(site, 0) + 1
            # .get(): checkpoints of *other* sites may run before the
            # targeted site has ever fired.
            ordinal = (
                self._seen.get(self.site, 0) if self.site is not None else self._seen[""]
            )
        if self.latency_s > 0.0:
            time.sleep(self.latency_s)
        if (
            self.fail_at is not None
            and ordinal == self.fail_at
            and (self.site is None or self.site == site)
        ):
            raise FaultInjectedError(
                f"injected fault at checkpoint #{ordinal} (site {site!r})"
            )

    def take_transient(self) -> bool:
        """Consume one injected transient failure, if any remain."""
        with self._lock:
            if self._transients_left <= 0:
                return False
            self._transients_left -= 1
            return True

    def checkpoints_seen(self) -> Dict[str, int]:
        """Per-site checkpoint counts ("" = total) — test assertions."""
        with self._lock:
            return dict(self._seen)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(latency_s={self.latency_s}, fail_at={self.fail_at}, "
            f"site={self.site!r}, transient={self.transient})"
        )


def parse_fault_spec(text: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec: comma-separated ``key=value`` pairs
    (``latency``, ``fail_at``, ``site``, ``transient``)."""
    kwargs: Dict[str, object] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "latency":
            kwargs["latency_s"] = float(value)
        elif key == "fail_at":
            kwargs["fail_at"] = int(value)
        elif key == "site":
            kwargs["site"] = value
        elif key == "transient":
            kwargs["transient"] = int(value)
        else:
            raise ValueError(f"unknown REPRO_FAULTS key {key!r} in {text!r}")
    return FaultPlan(**kwargs)  # type: ignore[arg-type]


_PLAN_LOCK = threading.Lock()
_ACTIVE_PLAN: Optional[FaultPlan] = None
_ENV_CHECKED = False


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as the process-wide fault scenario (None clears)."""
    global _ACTIVE_PLAN, _ENV_CHECKED
    with _PLAN_LOCK:
        _ACTIVE_PLAN = plan
        _ENV_CHECKED = True


def clear_fault_plan() -> None:
    """Remove any installed plan (and forget the environment override)."""
    install_fault_plan(None)


def active_fault_plan() -> Optional[FaultPlan]:
    """The installed plan; on first call, ``REPRO_FAULTS`` may supply one."""
    global _ACTIVE_PLAN, _ENV_CHECKED
    if _ENV_CHECKED:
        return _ACTIVE_PLAN
    with _PLAN_LOCK:
        if not _ENV_CHECKED:
            spec = os.environ.get("REPRO_FAULTS", "").strip()
            if spec:
                _ACTIVE_PLAN = parse_fault_spec(spec)
            _ENV_CHECKED = True
    return _ACTIVE_PLAN
