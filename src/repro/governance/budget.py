"""Query budgets and the per-execution governor.

A :class:`QueryBudget` is a declarative bundle of resource limits — a
wall-clock deadline, a cap on output rows, a cap on intermediate work
(tuples produced by joins, fixpoint delta pairs, mask bits) — attached to
a database (``Database(default_budget=...)``), a single call
(``Connection.execute(sql, timeout=..., budget=...)``), or both (the
per-call budget overrides field-wise).

A :class:`QueryGovernor` is the *active* form: built per execution from
the effective budget plus a :class:`~repro.governance.tokens.CancellationToken`,
installed in a context variable for the duration of the run, and polled
by cooperative checkpoints inside every long-running loop of the engines.
The disabled path stays allocation-free: with no budget, no token and no
fault plan there simply is no governor, and executors see ``None`` from
one context-variable read per operator.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ResourceExhaustedError,
)
from repro.governance.faults import FaultPlan, active_fault_plan
from repro.governance.tokens import CancellationToken

__all__ = [
    "QueryBudget",
    "QueryGovernor",
    "activate_governor",
    "current_governor",
    "make_governor",
]

#: How many loop iterations a checkpointed hot loop may run between two
#: governor polls.  Power of two so the guard compiles to a mask test.
CHECK_INTERVAL = 256


@dataclass(frozen=True)
class QueryBudget:
    """Declarative resource limits for one query (all optional).

    ``timeout_s``
        Wall-clock deadline in seconds, measured from execution start.
    ``max_output_rows``
        Cap on distinct output rows a query may return.
    ``max_intermediate``
        Cap on intermediate work units: join probe tuples, fixpoint
        delta pairs and decoded mask bits all count against it.
    """

    timeout_s: Optional[float] = None
    max_output_rows: Optional[int] = None
    max_intermediate: Optional[int] = None

    def merged(self, override: Optional["QueryBudget"]) -> "QueryBudget":
        """Field-wise overlay: ``override`` wins where it is set."""
        if override is None:
            return self
        return QueryBudget(
            timeout_s=override.timeout_s if override.timeout_s is not None else self.timeout_s,
            max_output_rows=(
                override.max_output_rows
                if override.max_output_rows is not None
                else self.max_output_rows
            ),
            max_intermediate=(
                override.max_intermediate
                if override.max_intermediate is not None
                else self.max_intermediate
            ),
        )

    def is_unlimited(self) -> bool:
        return (
            self.timeout_s is None
            and self.max_output_rows is None
            and self.max_intermediate is None
        )


class QueryGovernor:
    """Per-execution enforcement of one budget + cancellation token.

    Checkpoints are cheap by design — a site counter bump, a token flag
    read, one ``time.monotonic()`` when a deadline is set — and raise
    the governance errors with a ``progress`` snapshot attached.
    """

    __slots__ = (
        "budget",
        "token",
        "deadline",
        "started",
        "intermediate",
        "output_rows",
        "checkpoints",
        "sites",
        "faults",
    )

    def __init__(
        self,
        budget: QueryBudget,
        token: CancellationToken,
        *,
        faults: Optional[FaultPlan] = None,
    ):
        self.budget = budget
        self.token = token
        self.started = time.monotonic()
        self.deadline = (
            self.started + budget.timeout_s if budget.timeout_s is not None else None
        )
        self.intermediate = 0
        self.output_rows = 0
        self.checkpoints = 0
        self.sites: Dict[str, int] = {}
        self.faults = faults

    def progress(self) -> Dict[str, object]:
        """Partial-progress counters attached to every governance error."""
        return {
            "checkpoints": self.checkpoints,
            "sites": dict(self.sites),
            "intermediate": self.intermediate,
            "output_rows": self.output_rows,
            "elapsed_s": time.monotonic() - self.started,
        }

    def checkpoint(self, site: str, amount: int = 0) -> None:
        """One cooperative poll: count work, then enforce token/deadline/budget."""
        self.checkpoints += 1
        self.sites[site] = self.sites.get(site, 0) + 1
        if amount:
            self.intermediate += amount
        if self.faults is not None:
            self.faults.on_checkpoint(site)
        if self.token.cancelled():
            reason = self.token.reason or "cancelled"
            raise QueryCancelledError(
                f"query cancelled at checkpoint {site!r}: {reason}",
                reason=reason,
                progress=self.progress(),
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeoutError(
                f"query exceeded its {self.budget.timeout_s}s deadline "
                f"(checkpoint {site!r})",
                progress=self.progress(),
            )
        limit = self.budget.max_intermediate
        if limit is not None and self.intermediate > limit:
            raise ResourceExhaustedError(
                f"query exceeded max_intermediate={limit} "
                f"(counted {self.intermediate} at checkpoint {site!r})",
                progress=self.progress(),
            )

    def count_output(self, rows: int) -> None:
        """Count produced output rows against ``max_output_rows``."""
        self.output_rows += rows
        limit = self.budget.max_output_rows
        if limit is not None and self.output_rows > limit:
            raise ResourceExhaustedError(
                f"query exceeded max_output_rows={limit} "
                f"(produced {self.output_rows})",
                progress=self.progress(),
            )

    def expired(self) -> bool:
        """Non-raising deadline/cancellation probe (SQLite progress handler)."""
        if self.token.cancelled():
            return True
        return self.deadline is not None and time.monotonic() > self.deadline


_ACTIVE: ContextVar[Optional[QueryGovernor]] = ContextVar(
    "repro_active_governor", default=None
)


def current_governor() -> Optional[QueryGovernor]:
    """The governor of the in-flight execution on this thread, if any."""
    return _ACTIVE.get()


@contextmanager
def activate_governor(governor: Optional[QueryGovernor]) -> Iterator[Optional[QueryGovernor]]:
    """Install ``governor`` for the duration of the block (None = no-op)."""
    if governor is None:
        yield None
        return
    reset = _ACTIVE.set(governor)
    try:
        yield governor
    finally:
        _ACTIVE.reset(reset)


def make_governor(
    budget: Optional[QueryBudget],
    token: Optional[CancellationToken],
) -> Optional[QueryGovernor]:
    """Build a governor when anything needs enforcing, else ``None``.

    A governor exists when a limit is set, a token was supplied (so an
    external cancel can land), or a fault plan is installed (so chaos
    runs exercise every checkpoint even without budgets).  Otherwise the
    execution runs governor-free — the allocation-free disabled path.
    """
    faults = active_fault_plan()
    if (budget is None or budget.is_unlimited()) and token is None and faults is None:
        return None
    return QueryGovernor(
        budget if budget is not None else QueryBudget(),
        token if token is not None else CancellationToken(),
        faults=faults,
    )
