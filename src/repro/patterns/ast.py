"""Pattern and output-pattern abstract syntax (Figure 1 of the paper).

The grammar is

    psi := (x) | -x-> | <-x- | psi1 psi2 | psi^{n..m} | psi<theta>
         | psi1 + psi2    (requires fv(psi1) = fv(psi2))

where the variable ``x`` is optional, and ``0 <= n <= m <= infinity``.
Free variables follow Figure 1 exactly; in particular repetition binds all
variables of its body (``fv(psi^{n..m}) = {}``).

Output patterns ``psi_Omega`` project the matches of ``psi`` onto a tuple
``Omega = (omega_1, ..., omega_n)`` of pairwise-distinct items, each either
a pattern variable or a property reference ``x.k``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import FrozenSet, Iterator, Optional, Tuple, Union

from repro.errors import PatternError
from repro.patterns.conditions import PatternCondition

#: Sentinel for an unbounded upper repetition bound (``m = infinity``).
INFINITY = math.inf

_anonymous_counter = itertools.count()


def fresh_variable(prefix: str = "_anon") -> str:
    """Generate a fresh variable name, used for anonymous pattern elements."""
    return f"{prefix}{next(_anonymous_counter)}"


class Pattern:
    """Base class for path patterns."""

    def free_variables(self) -> FrozenSet[str]:
        """``fv(psi)`` per Figure 1."""
        raise NotImplementedError

    def all_variables(self) -> FrozenSet[str]:
        """Every variable syntactically occurring in the pattern (free or bound)."""
        raise NotImplementedError

    def validate(self) -> None:
        """Check well-formedness; raises :class:`PatternError` otherwise."""
        raise NotImplementedError

    # Combinators mirroring the grammar ---------------------------------------
    def then(self, other: "Pattern") -> "Concatenation":
        return Concatenation(self, other)

    def where(self, condition: PatternCondition) -> "Filter":
        return Filter(self, condition)

    def alternation(self, other: "Pattern") -> "Disjunction":
        return Disjunction(self, other)

    def repeat(self, lower: int = 0, upper: float = INFINITY) -> "Repetition":
        return Repetition(self, lower, upper)

    def star(self) -> "Repetition":
        """Kleene star ``psi^{0..inf}``."""
        return Repetition(self, 0, INFINITY)

    def plus(self) -> "Repetition":
        """One-or-more repetition ``psi^{1..inf}``."""
        return Repetition(self, 1, INFINITY)

    def output(self, *items: Union[str, "PropertyRef"]) -> "OutputPattern":
        return OutputPattern(self, tuple(items))


@dataclass(frozen=True)
class NodePattern(Pattern):
    """``(x)``: matches any node, binding it to ``x`` when given."""

    variable: Optional[str] = None

    def free_variables(self) -> FrozenSet[str]:
        return frozenset() if self.variable is None else frozenset({self.variable})

    def all_variables(self) -> FrozenSet[str]:
        return self.free_variables()

    def validate(self) -> None:
        return None


@dataclass(frozen=True)
class EdgePattern(Pattern):
    """``-x->`` (forward) or ``<-x-`` (backward) single-edge pattern."""

    variable: Optional[str] = None
    forward: bool = True

    def free_variables(self) -> FrozenSet[str]:
        return frozenset() if self.variable is None else frozenset({self.variable})

    def all_variables(self) -> FrozenSet[str]:
        return self.free_variables()

    def validate(self) -> None:
        return None


@dataclass(frozen=True)
class Concatenation(Pattern):
    """``psi1 psi2``: paths that decompose into a psi1-path then a psi2-path."""

    left: Pattern
    right: Pattern

    def free_variables(self) -> FrozenSet[str]:
        return self.left.free_variables() | self.right.free_variables()

    def all_variables(self) -> FrozenSet[str]:
        return self.left.all_variables() | self.right.all_variables()

    def validate(self) -> None:
        self.left.validate()
        self.right.validate()


@dataclass(frozen=True)
class Disjunction(Pattern):
    """``psi1 + psi2``: union of matches; requires ``fv(psi1) = fv(psi2)``."""

    left: Pattern
    right: Pattern

    def free_variables(self) -> FrozenSet[str]:
        return self.left.free_variables()

    def all_variables(self) -> FrozenSet[str]:
        return self.left.all_variables() | self.right.all_variables()

    def validate(self) -> None:
        self.left.validate()
        self.right.validate()
        if self.left.free_variables() != self.right.free_variables():
            raise PatternError(
                "disjunction requires equal free-variable sets, got "
                f"{sorted(self.left.free_variables())} and "
                f"{sorted(self.right.free_variables())}"
            )


@dataclass(frozen=True)
class Repetition(Pattern):
    """``psi^{n..m}`` with ``0 <= n <= m <= infinity``.

    Repetition erases bindings: ``fv(psi^{n..m}) = {}`` (Figure 1), so the
    semantics only records source and target of the repeated path.
    """

    body: Pattern
    lower: int = 0
    upper: float = INFINITY

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def all_variables(self) -> FrozenSet[str]:
        return self.body.all_variables()

    def validate(self) -> None:
        self.body.validate()
        if self.lower < 0:
            raise PatternError(f"repetition lower bound must be >= 0, got {self.lower}")
        if self.upper != INFINITY and (self.upper < self.lower or int(self.upper) != self.upper):
            raise PatternError(
                f"repetition upper bound must be an integer >= lower bound or infinity, "
                f"got {self.upper}"
            )

    @property
    def is_unbounded(self) -> bool:
        return self.upper == INFINITY


@dataclass(frozen=True)
class Filter(Pattern):
    """``psi<theta>``: matches of ``psi`` whose mapping satisfies ``theta``."""

    body: Pattern
    condition: PatternCondition

    def free_variables(self) -> FrozenSet[str]:
        return self.body.free_variables()

    def all_variables(self) -> FrozenSet[str]:
        return self.body.all_variables() | self.condition.variables()

    def validate(self) -> None:
        self.body.validate()
        unknown = self.condition.variables() - self.body.free_variables()
        if unknown:
            raise PatternError(
                f"filter condition mentions variables not bound by the pattern: {sorted(unknown)}"
            )


@dataclass(frozen=True)
class PropertyRef:
    """An output item ``x.key`` projecting a property of a bound element."""

    variable: str
    key: str

    def __str__(self) -> str:
        return f"{self.variable}.{self.key}"


#: Output items are either plain variables or property references.
OutputItem = Union[str, PropertyRef]


@dataclass(frozen=True)
class OutputPattern:
    """``psi_Omega``: a pattern with an output tuple ``Omega``.

    ``fv(psi_Omega) = {omega_1, ..., omega_n}`` and the items must be
    pairwise distinct (Figure 1).  The empty output tuple yields a Boolean
    (0-ary) query: the result is the singleton empty tuple iff a match
    exists.
    """

    pattern: Pattern
    items: Tuple[OutputItem, ...] = ()

    def validate(self) -> None:
        self.pattern.validate()
        seen = set()
        for item in self.items:
            if item in seen:
                raise PatternError(f"output items must be pairwise distinct; {item!r} repeats")
            seen.add(item)
        bound = self.pattern.free_variables()
        for item in self.items:
            variable = item.variable if isinstance(item, PropertyRef) else item
            if variable not in bound:
                raise PatternError(
                    f"output item {item!r} refers to variable {variable!r}, "
                    f"which is not free in the pattern (free: {sorted(bound)})"
                )

    @property
    def arity(self) -> int:
        return len(self.items)

    def output_variables(self) -> FrozenSet[str]:
        """Variables used by the output tuple."""
        return frozenset(
            item.variable if isinstance(item, PropertyRef) else item for item in self.items
        )


def pattern_depth(pattern: Pattern) -> int:
    """Syntactic depth of a pattern, used for size-bounded enumeration."""
    if isinstance(pattern, (NodePattern, EdgePattern)):
        return 1
    if isinstance(pattern, (Concatenation, Disjunction)):
        return 1 + max(pattern_depth(pattern.left), pattern_depth(pattern.right))
    if isinstance(pattern, (Repetition, Filter)):
        return 1 + pattern_depth(pattern.body)
    raise PatternError(f"unknown pattern node {pattern!r}")


def pattern_size(pattern: Pattern) -> int:
    """Number of AST nodes of a pattern."""
    if isinstance(pattern, (NodePattern, EdgePattern)):
        return 1
    if isinstance(pattern, (Concatenation, Disjunction)):
        return 1 + pattern_size(pattern.left) + pattern_size(pattern.right)
    if isinstance(pattern, (Repetition, Filter)):
        return 1 + pattern_size(pattern.body)
    raise PatternError(f"unknown pattern node {pattern!r}")


def iter_subpatterns(pattern: Pattern) -> Iterator[Pattern]:
    """Yield the pattern and all of its sub-patterns, pre-order."""
    yield pattern
    if isinstance(pattern, (Concatenation, Disjunction)):
        yield from iter_subpatterns(pattern.left)
        yield from iter_subpatterns(pattern.right)
    elif isinstance(pattern, (Repetition, Filter)):
        yield from iter_subpatterns(pattern.body)


# --------------------------------------------------------------------------- #
# Parameter slots (prepared statements)
# --------------------------------------------------------------------------- #
def pattern_parameters(pattern: Pattern) -> FrozenSet[str]:
    """Names of every parameter slot occurring in the pattern's conditions."""
    names: FrozenSet[str] = frozenset()
    for sub in iter_subpatterns(pattern):
        if isinstance(sub, Filter):
            names |= sub.condition.parameters()
    return names


def bind_pattern(pattern: Pattern, bindings) -> Pattern:
    """The pattern with every parameter slot replaced by its bound value.

    Identity-preserving: sub-trees without slots are returned unchanged,
    so a fully concrete pattern keeps its object identity (and a bound
    pattern stays structurally equal across repeated bindings — which is
    what executor memo tables key on).
    """
    if isinstance(pattern, (NodePattern, EdgePattern)):
        return pattern
    if isinstance(pattern, Concatenation):
        left, right = bind_pattern(pattern.left, bindings), bind_pattern(pattern.right, bindings)
        if left is pattern.left and right is pattern.right:
            return pattern
        return Concatenation(left, right)
    if isinstance(pattern, Disjunction):
        left, right = bind_pattern(pattern.left, bindings), bind_pattern(pattern.right, bindings)
        if left is pattern.left and right is pattern.right:
            return pattern
        return Disjunction(left, right)
    if isinstance(pattern, Repetition):
        body = bind_pattern(pattern.body, bindings)
        return pattern if body is pattern.body else Repetition(body, pattern.lower, pattern.upper)
    if isinstance(pattern, Filter):
        body = bind_pattern(pattern.body, bindings)
        condition = pattern.condition.bind(bindings)
        if body is pattern.body and condition is pattern.condition:
            return pattern
        return Filter(body, condition)
    raise PatternError(f"cannot bind unknown pattern node {pattern!r}")


def bind_output(output: OutputPattern, bindings) -> OutputPattern:
    """Bind the parameter slots of an output pattern (items carry none)."""
    pattern = bind_pattern(output.pattern, bindings)
    return output if pattern is output.pattern else OutputPattern(pattern, output.items)
