"""Pattern-level conditions (Figure 1 of the paper).

The grammar of conditions is

    theta := x.k = x'.k' | l(x) | theta ∨ theta | theta ∧ theta | ¬ theta

where ``x, x'`` are pattern variables, ``k, k'`` are property keys, and
``l`` is a label.  A mapping ``mu`` satisfies ``x.k = x'.k'`` when both
property values are defined and equal, and satisfies ``l(x)`` when the
label ``l`` belongs to ``lab(mu(x))``.

We additionally support comparisons between a property and a constant
(``x.k > 100``) and between two properties with an ordered comparator.
Example 2.1 of the paper uses ``t.amount > 100``; on ordered structures
these comparisons are definable, so they do not change the expressiveness
landscape, but they are part of the concrete SQL/PGQ surface.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet

from repro.errors import BindingError, PatternError
from repro.graph.identifiers import Identifier
from repro.graph.property_graph import PropertyGraph
from repro.parameters import Bindings, Parameter, bind_value

#: A variable mapping assigns graph element identifiers to pattern variables.
Mapping = Dict[str, Identifier]

#: Comparator dispatch shared with the planner's columnar scan
#: predicates (:mod:`repro.planner.physical`) — one table, so the boxed
#: and compact evaluation paths can never diverge on an operator.
COMPARATORS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}
_COMPARATORS = COMPARATORS


class PatternCondition:
    """Base class for pattern conditions evaluated against a mapping."""

    def satisfied(self, graph: PropertyGraph, mapping: Mapping) -> bool:
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        """Pattern variables mentioned by the condition."""
        raise NotImplementedError

    def parameters(self) -> FrozenSet[str]:
        """Names of the :class:`~repro.parameters.Parameter` slots used by
        the condition (empty for fully concrete conditions)."""
        return frozenset()

    def bind(self, bindings: Bindings) -> "PatternCondition":
        """The condition with every parameter slot replaced by its bound
        value.  Identity-preserving: a condition without slots (or whose
        sub-trees are unchanged) is returned as-is, so bound trees stay
        equal — and memo/cache friendly — across repeated executions."""
        return self

    def __and__(self, other: "PatternCondition") -> "PatternCondition":
        return AndCondition(self, other)

    def __or__(self, other: "PatternCondition") -> "PatternCondition":
        return OrCondition(self, other)

    def __invert__(self) -> "PatternCondition":
        return NotCondition(self)


@dataclass(frozen=True)
class PropertyEquals(PatternCondition):
    """``x.key = y.other_key``: both defined and equal."""

    left_var: str
    left_key: str
    right_var: str
    right_key: str

    def satisfied(self, graph: PropertyGraph, mapping: Mapping) -> bool:
        if self.left_var not in mapping or self.right_var not in mapping:
            return False
        left_elem = mapping[self.left_var]
        right_elem = mapping[self.right_var]
        if not graph.has_property(left_elem, self.left_key):
            return False
        if not graph.has_property(right_elem, self.right_key):
            return False
        return graph.property(left_elem, self.left_key) == graph.property(
            right_elem, self.right_key
        )

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.left_var, self.right_var})


@dataclass(frozen=True)
class PropertyCompare(PatternCondition):
    """``x.key  op  constant`` for an ordered comparator.

    Undefined properties never satisfy the comparison, mirroring the
    three-valued treatment of missing values in the standard.
    """

    var: str
    key: str
    operator: str
    constant: Any

    def __post_init__(self) -> None:
        if self.operator not in _COMPARATORS:
            raise PatternError(f"unsupported comparison operator {self.operator!r}")

    def satisfied(self, graph: PropertyGraph, mapping: Mapping) -> bool:
        # An unbound slot must raise, not silently decide: ordered
        # comparisons raise through Parameter's reflected operators, but
        # '='/'!=' are structural ('!=' would match every defined value).
        if isinstance(self.constant, Parameter):
            raise BindingError(
                f"parameter {self.constant!r} must be bound before evaluation"
            )
        if self.var not in mapping:
            return False
        element = mapping[self.var]
        if not graph.has_property(element, self.key):
            return False
        value = graph.property(element, self.key)
        try:
            return _COMPARATORS[self.operator](value, self.constant)
        except TypeError:
            return False

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.var})

    def parameters(self) -> FrozenSet[str]:
        if isinstance(self.constant, Parameter):
            return frozenset({self.constant.name})
        return frozenset()

    def bind(self, bindings: Bindings) -> "PatternCondition":
        if isinstance(self.constant, Parameter):
            return PropertyCompare(
                self.var, self.key, self.operator, bind_value(self.constant, bindings)
            )
        return self


@dataclass(frozen=True)
class PropertyComparesProperty(PatternCondition):
    """``x.key  op  y.other_key`` for an ordered comparator."""

    left_var: str
    left_key: str
    operator: str
    right_var: str
    right_key: str

    def __post_init__(self) -> None:
        if self.operator not in _COMPARATORS:
            raise PatternError(f"unsupported comparison operator {self.operator!r}")

    def satisfied(self, graph: PropertyGraph, mapping: Mapping) -> bool:
        if self.left_var not in mapping or self.right_var not in mapping:
            return False
        left_elem = mapping[self.left_var]
        right_elem = mapping[self.right_var]
        if not graph.has_property(left_elem, self.left_key):
            return False
        if not graph.has_property(right_elem, self.right_key):
            return False
        left = graph.property(left_elem, self.left_key)
        right = graph.property(right_elem, self.right_key)
        try:
            return _COMPARATORS[self.operator](left, right)
        except TypeError:
            return False

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.left_var, self.right_var})


@dataclass(frozen=True)
class HasLabel(PatternCondition):
    """``l(x)``: the element bound to ``x`` carries label ``l``."""

    var: str
    label: str

    def satisfied(self, graph: PropertyGraph, mapping: Mapping) -> bool:
        if self.var not in mapping:
            return False
        return self.label in graph.labels(mapping[self.var])

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.var})


@dataclass(frozen=True)
class AndCondition(PatternCondition):
    left: PatternCondition
    right: PatternCondition

    def satisfied(self, graph: PropertyGraph, mapping: Mapping) -> bool:
        return self.left.satisfied(graph, mapping) and self.right.satisfied(graph, mapping)

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def parameters(self) -> FrozenSet[str]:
        return self.left.parameters() | self.right.parameters()

    def bind(self, bindings: Bindings) -> "PatternCondition":
        left, right = self.left.bind(bindings), self.right.bind(bindings)
        if left is self.left and right is self.right:
            return self
        return AndCondition(left, right)


@dataclass(frozen=True)
class OrCondition(PatternCondition):
    left: PatternCondition
    right: PatternCondition

    def satisfied(self, graph: PropertyGraph, mapping: Mapping) -> bool:
        return self.left.satisfied(graph, mapping) or self.right.satisfied(graph, mapping)

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def parameters(self) -> FrozenSet[str]:
        return self.left.parameters() | self.right.parameters()

    def bind(self, bindings: Bindings) -> "PatternCondition":
        left, right = self.left.bind(bindings), self.right.bind(bindings)
        if left is self.left and right is self.right:
            return self
        return OrCondition(left, right)


@dataclass(frozen=True)
class NotCondition(PatternCondition):
    operand: PatternCondition

    def satisfied(self, graph: PropertyGraph, mapping: Mapping) -> bool:
        return not self.operand.satisfied(graph, mapping)

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def parameters(self) -> FrozenSet[str]:
        return self.operand.parameters()

    def bind(self, bindings: Bindings) -> "PatternCondition":
        operand = self.operand.bind(bindings)
        return self if operand is self.operand else NotCondition(operand)
