"""A small fluent DSL for building patterns.

The textual syntax of Figure 1 is terse; this module offers readable
constructors so examples and tests mirror the paper's notation closely::

    from repro.patterns import builder as P

    # ((x) -t-> (y))^{1..inf} with a filter, output (x.iban, y.iban)
    pattern = P.seq(P.node("x"), P.edge("t"), P.node("y"))
    query = P.seq(P.node("x"), P.edge("t").plus_path(), P.node("y"))
"""

from __future__ import annotations

from typing import Optional, Union

from repro.patterns.ast import (
    Concatenation,
    Disjunction,
    EdgePattern,
    Filter,
    NodePattern,
    OutputPattern,
    Pattern,
    PropertyRef,
    Repetition,
    INFINITY,
)
from repro.patterns.conditions import (
    HasLabel,
    PatternCondition,
    PropertyCompare,
    PropertyComparesProperty,
    PropertyEquals,
)


def node(variable: Optional[str] = None) -> NodePattern:
    """``(x)`` — a node pattern, optionally binding ``variable``."""
    return NodePattern(variable)


def edge(variable: Optional[str] = None) -> EdgePattern:
    """``-x->`` — a forward edge pattern."""
    return EdgePattern(variable, forward=True)


def back_edge(variable: Optional[str] = None) -> EdgePattern:
    """``<-x-`` — a backward edge pattern."""
    return EdgePattern(variable, forward=False)


def seq(first: Pattern, *rest: Pattern) -> Pattern:
    """Left-associated concatenation of one or more patterns."""
    result = first
    for pattern in rest:
        result = Concatenation(result, pattern)
    return result


def either(left: Pattern, right: Pattern) -> Disjunction:
    """``psi1 + psi2`` — disjunction."""
    return Disjunction(left, right)


def repeat(body: Pattern, lower: int = 0, upper: float = INFINITY) -> Repetition:
    """``psi^{lower..upper}`` — bounded or unbounded repetition."""
    return Repetition(body, lower, upper)


def star(body: Pattern) -> Repetition:
    """``psi*`` — zero-or-more repetition."""
    return Repetition(body, 0, INFINITY)


def plus(body: Pattern) -> Repetition:
    """``psi^{1..inf}`` — one-or-more repetition."""
    return Repetition(body, 1, INFINITY)


def where(body: Pattern, condition: PatternCondition) -> Filter:
    """``psi<theta>`` — filtered pattern."""
    return Filter(body, condition)


def output(pattern: Pattern, *items: Union[str, PropertyRef]) -> OutputPattern:
    """``psi_Omega`` — output pattern projecting the given items."""
    return OutputPattern(pattern, tuple(items))


def prop(variable: str, key: str) -> PropertyRef:
    """Output item ``x.key``."""
    return PropertyRef(variable, key)


def label(variable: str, name: str) -> HasLabel:
    """Condition ``name(variable)``."""
    return HasLabel(variable, name)


def prop_eq(left_var: str, left_key: str, right_var: str, right_key: str) -> PropertyEquals:
    """Condition ``left_var.left_key = right_var.right_key``."""
    return PropertyEquals(left_var, left_key, right_var, right_key)


def prop_cmp(variable: str, key: str, operator: str, constant) -> PropertyCompare:
    """Condition ``variable.key  operator  constant`` (e.g. amount > 100)."""
    return PropertyCompare(variable, key, operator, constant)


def prop_cmp_prop(
    left_var: str, left_key: str, operator: str, right_var: str, right_key: str
) -> PropertyComparesProperty:
    """Condition ``left_var.left_key  operator  right_var.right_key``."""
    return PropertyComparesProperty(left_var, left_key, operator, right_var, right_key)


def reachability(source_var: str = "x", target_var: str = "y") -> OutputPattern:
    """The reachability output pattern ``((x) (-> )* (y))_{x, y}``.

    This is the pattern ``psi_reach`` used in the FO[TC] -> PGQext
    translation (Lemma 9.4): all pairs connected by a (possibly empty)
    directed path.
    """
    pattern = seq(node(source_var), star(seq(edge(), node())), node(target_var))
    return OutputPattern(pattern, (source_var, target_var))


def nonempty_reachability(source_var: str = "x", target_var: str = "y") -> OutputPattern:
    """Reachability by at least one edge: ``((x) (-> )^{1..inf} (y))_{x, y}``."""
    pattern = seq(node(source_var), plus(seq(edge(), node())), node(target_var))
    return OutputPattern(pattern, (source_var, target_var))
