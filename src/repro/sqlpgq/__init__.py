"""SQL/PGQ concrete syntax: lexer, parser, catalog and compiler."""

from repro.sqlpgq.ast import (
    BooleanExpression,
    Comparison,
    CreatePropertyGraph,
    EdgeElement,
    EdgeTableSpec,
    GraphTableQuery,
    LiteralOperand,
    NodeElement,
    NodeTableSpec,
    OutputColumn,
    PropertyOperand,
    Quantifier,
)
from repro.sqlpgq.catalog import GraphCatalog, GraphDefinition, compile_graph_definition
from repro.sqlpgq.compiler import compile_query
from repro.sqlpgq.lexer import Token, TokenStream, tokenize
from repro.sqlpgq.parser import (
    parse_create_property_graph,
    parse_graph_query,
    parse_statement,
)

__all__ = [
    "BooleanExpression",
    "Comparison",
    "CreatePropertyGraph",
    "EdgeElement",
    "EdgeTableSpec",
    "GraphCatalog",
    "GraphDefinition",
    "GraphTableQuery",
    "LiteralOperand",
    "NodeElement",
    "NodeTableSpec",
    "OutputColumn",
    "PropertyOperand",
    "Quantifier",
    "Token",
    "TokenStream",
    "compile_graph_definition",
    "compile_query",
    "parse_create_property_graph",
    "parse_graph_query",
    "parse_statement",
    "tokenize",
]
