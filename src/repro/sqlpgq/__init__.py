"""SQL/PGQ concrete syntax: lexer, parser, catalog and compiler."""

from repro.sqlpgq.ast import (
    BooleanExpression,
    Comparison,
    CreatePropertyGraph,
    EdgeElement,
    EdgeTableSpec,
    GraphTableQuery,
    LabelTest,
    LiteralOperand,
    NodeElement,
    NodeTableSpec,
    OutputColumn,
    ParameterOperand,
    PropertyOperand,
    Quantifier,
    SourcePosition,
)
from repro.sqlpgq.catalog import GraphCatalog, GraphDefinition, compile_graph_definition
from repro.sqlpgq.compiler import compile_query
from repro.sqlpgq.lexer import Token, TokenStream, source_excerpt, tokenize
from repro.sqlpgq.parser import (
    parse_create_property_graph,
    parse_graph_query,
    parse_statement,
)

__all__ = [
    "BooleanExpression",
    "Comparison",
    "CreatePropertyGraph",
    "EdgeElement",
    "EdgeTableSpec",
    "GraphCatalog",
    "GraphDefinition",
    "GraphTableQuery",
    "LabelTest",
    "LiteralOperand",
    "NodeElement",
    "NodeTableSpec",
    "OutputColumn",
    "ParameterOperand",
    "PropertyOperand",
    "Quantifier",
    "SourcePosition",
    "Token",
    "TokenStream",
    "compile_graph_definition",
    "compile_query",
    "parse_create_property_graph",
    "parse_graph_query",
    "parse_statement",
    "source_excerpt",
    "tokenize",
]
