"""Property-graph catalog: from DDL to the canonical six view subqueries.

A ``CREATE PROPERTY GRAPH`` statement names relational tables and columns;
this module lowers such a definition onto the paper's formal view layer by
producing, for a given relational schema, the six subqueries
``(Q1, ..., Q6)`` whose results feed ``pgView`` / ``pgView_ext``
(Definitions 3.2 and 5.2).  The lowering is purely syntactic: node and edge
identifiers are the key-column tuples, labels become constant-labelled
projections, and every declared property column contributes
``(key, 'column', value)`` rows to the property relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import QueryError, SchemaError
from repro.pgq.queries import (
    BaseRelation,
    Constant,
    EmptyRelation,
    Product,
    Project,
    Query,
    Union,
)
from repro.relational.schema import Schema
from repro.sqlpgq.ast import CreatePropertyGraph


def _constant(value: str) -> Query:
    return Constant(value, require_active=False)


def _union_all(queries: Sequence[Query], *, empty_arity: int) -> Query:
    if not queries:
        return EmptyRelation(empty_arity)
    result = queries[0]
    for query in queries[1:]:
        result = Union(result, query)
    return result


@dataclass(frozen=True)
class GraphDefinition:
    """A compiled property-graph view definition bound to a schema."""

    name: str
    statement: CreatePropertyGraph
    identifier_arity: int
    sources: Tuple[Query, Query, Query, Query, Query, Query]

    def view_subqueries(self) -> Tuple[Query, Query, Query, Query, Query, Query]:
        return self.sources


class GraphCatalog:
    """Registry of property-graph view definitions over one relational schema."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._graphs: Dict[str, GraphDefinition] = {}

    # ------------------------------------------------------------------ #
    def register(self, statement: CreatePropertyGraph) -> GraphDefinition:
        """Compile and store a CREATE PROPERTY GRAPH statement."""
        definition = compile_graph_definition(statement, self.schema)
        self._graphs[statement.name] = definition
        return definition

    def get(self, name: str) -> GraphDefinition:
        if name not in self._graphs:
            raise QueryError(f"no property graph named {name!r} has been created")
        return self._graphs[name]

    def __contains__(self, name: str) -> bool:
        return name in self._graphs

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._graphs))


# --------------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------------- #
def _column_positions(schema: Schema, table: str, columns: Sequence[str]) -> Tuple[int, ...]:
    relation = schema.relation(table)
    if not relation.columns:
        raise SchemaError(
            f"table {table!r} has no declared column names; property graph DDL needs them"
        )
    return tuple(relation.column_index(column) for column in columns)


def _key_query(schema: Schema, table: str, columns: Sequence[str]) -> Query:
    return Project(BaseRelation(table), _column_positions(schema, table, columns))


def _label_queries(
    schema: Schema, table: str, key_columns: Sequence[str], labels: Sequence[str]
) -> List[Query]:
    key_positions = _column_positions(schema, table, key_columns)
    queries: List[Query] = []
    for label in labels:
        labelled = Product(BaseRelation(table), _constant(label))
        arity = schema.arity(table)
        queries.append(Project(labelled, key_positions + (arity + 1,)))
    return queries


def _property_queries(
    schema: Schema, table: str, key_columns: Sequence[str], properties: Sequence[str]
) -> List[Query]:
    key_positions = _column_positions(schema, table, key_columns)
    arity = schema.arity(table)
    queries: List[Query] = []
    for column in properties:
        value_position = schema.relation(table).column_index(column)
        keyed = Product(BaseRelation(table), _constant(column))
        queries.append(Project(keyed, key_positions + (arity + 1, value_position)))
    return queries


def compile_graph_definition(statement: CreatePropertyGraph, schema: Schema) -> GraphDefinition:
    """Lower a CREATE PROPERTY GRAPH statement to the six view subqueries."""
    key_arities = {len(spec.key_columns) for spec in statement.node_tables}
    key_arities |= {len(spec.key_columns) for spec in statement.edge_tables}
    if len(key_arities) != 1:
        raise SchemaError(
            f"property graph {statement.name!r} mixes key arities {sorted(key_arities)}; "
            "the canonical six-relation encoding requires one identifier arity "
            "(Remark 5.1 of the paper)"
        )
    arity = key_arities.pop()

    def exposed_properties(table: str, declared: Sequence[str]) -> Sequence[str]:
        # The SQL/PGQ default is "PROPERTIES ARE ALL COLUMNS": when no
        # PROPERTIES clause is given, every column of the table (including
        # the key, as in Example 1.1's x.iban) is exposed as a property.
        if declared:
            return declared
        return schema.relation(table).columns

    node_queries: List[Query] = []
    label_queries: List[Query] = []
    property_queries: List[Query] = []
    for spec in statement.node_tables:
        node_queries.append(_key_query(schema, spec.table, spec.key_columns))
        label_queries.extend(_label_queries(schema, spec.table, spec.key_columns, spec.labels))
        property_queries.extend(
            _property_queries(
                schema, spec.table, spec.key_columns, exposed_properties(spec.table, spec.properties)
            )
        )

    edge_queries: List[Query] = []
    source_queries: List[Query] = []
    target_queries: List[Query] = []
    for spec in statement.edge_tables:
        edge_queries.append(_key_query(schema, spec.table, spec.key_columns))
        key_positions = _column_positions(schema, spec.table, spec.key_columns)
        source_positions = _column_positions(schema, spec.table, spec.source_columns)
        target_positions = _column_positions(schema, spec.table, spec.target_columns)
        if len(source_positions) != arity or len(target_positions) != arity:
            raise SchemaError(
                f"edge table {spec.table!r} references endpoints with a key arity different "
                f"from the graph's identifier arity {arity}"
            )
        source_queries.append(
            Project(BaseRelation(spec.table), key_positions + source_positions)
        )
        target_queries.append(
            Project(BaseRelation(spec.table), key_positions + target_positions)
        )
        label_queries.extend(_label_queries(schema, spec.table, spec.key_columns, spec.labels))
        property_queries.extend(
            _property_queries(
                schema, spec.table, spec.key_columns, exposed_properties(spec.table, spec.properties)
            )
        )

    sources = (
        _union_all(node_queries, empty_arity=arity),
        _union_all(edge_queries, empty_arity=arity),
        _union_all(source_queries, empty_arity=2 * arity),
        _union_all(target_queries, empty_arity=2 * arity),
        _union_all(label_queries, empty_arity=arity + 1),
        _union_all(property_queries, empty_arity=arity + 2),
    )
    return GraphDefinition(statement.name, statement, arity, sources)
