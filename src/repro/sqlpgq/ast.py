"""Abstract syntax of the SQL/PGQ surface subset.

Two statement kinds are modelled:

* ``CREATE PROPERTY GRAPH`` view definitions (Section 1, Example 1.1),
  which declare how nodes and edges of a tabular property graph are derived
  from relational tables;
* ``SELECT ... FROM GRAPH_TABLE(graph MATCH pattern [WHERE cond]
  COLUMNS/RETURN (...))`` queries (Section 2, Example 2.1).

The AST stays close to the concrete syntax; the compiler in
:mod:`repro.sqlpgq.compiler` lowers it onto the paper's formal fragments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

#: ``(line, column)`` of the token that introduced an AST node.  Positions
#: are carried for diagnostics only: they are excluded from equality and
#: hashing (plan caches key on structural equality of ASTs) and from repr
#: (snapshot fingerprints hash ``repr(statement)`` of DDL nodes).
SourcePosition = Tuple[int, int]


def _position_field() -> Optional[SourcePosition]:
    return field(default=None, compare=False, repr=False)


# --------------------------------------------------------------------------- #
# CREATE PROPERTY GRAPH
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class NodeTableSpec:
    """One vertex table: its key columns, labels and exposed properties."""

    table: str
    key_columns: Tuple[str, ...]
    labels: Tuple[str, ...] = ()
    properties: Tuple[str, ...] = ()
    position: Optional[SourcePosition] = _position_field()


@dataclass(frozen=True)
class EdgeTableSpec:
    """One edge table: key, endpoint references, labels and properties."""

    table: str
    key_columns: Tuple[str, ...]
    source_columns: Tuple[str, ...]
    source_table: str
    target_columns: Tuple[str, ...]
    target_table: str
    labels: Tuple[str, ...] = ()
    properties: Tuple[str, ...] = ()
    position: Optional[SourcePosition] = _position_field()


@dataclass(frozen=True)
class CreatePropertyGraph:
    """``CREATE PROPERTY GRAPH name ( NODES TABLE ... EDGES TABLE ... )``."""

    name: str
    node_tables: Tuple[NodeTableSpec, ...]
    edge_tables: Tuple[EdgeTableSpec, ...]
    position: Optional[SourcePosition] = _position_field()


# --------------------------------------------------------------------------- #
# MATCH patterns
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class NodeElement:
    """``(x:Label)`` — a node element of a MATCH pattern."""

    variable: Optional[str]
    labels: Tuple[str, ...] = ()
    position: Optional[SourcePosition] = _position_field()


@dataclass(frozen=True)
class Quantifier:
    """A postfix quantifier: ``*`` (0, inf), ``+`` (1, inf) or ``{n,m}``."""

    lower: int
    upper: Optional[int]  # None means unbounded


@dataclass(frozen=True)
class EdgeElement:
    """``-[t:Label]->`` or ``<-[t:Label]-`` with an optional quantifier."""

    variable: Optional[str]
    labels: Tuple[str, ...] = ()
    forward: bool = True
    quantifier: Optional[Quantifier] = None
    position: Optional[SourcePosition] = _position_field()


PathElement = Union[NodeElement, EdgeElement]


# --------------------------------------------------------------------------- #
# WHERE conditions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PropertyOperand:
    """``x.key`` on either side of a comparison."""

    variable: str
    key: str
    position: Optional[SourcePosition] = _position_field()


@dataclass(frozen=True)
class LiteralOperand:
    """A number or string literal."""

    value: object
    position: Optional[SourcePosition] = _position_field()


@dataclass(frozen=True)
class ParameterOperand:
    """A ``:name`` parameter placeholder standing where a literal may.

    Parameterized statements are prepared once and executed with per-call
    bindings (:meth:`repro.engine.session.PGQSession.prepare`); the
    compiler lowers this operand to a
    :class:`~repro.parameters.Parameter` slot in the condition tree.
    """

    name: str
    position: Optional[SourcePosition] = _position_field()


#: Operands of a WHERE comparison: a property access, a literal, or a
#: parameter placeholder.
Operand = Union[PropertyOperand, LiteralOperand, ParameterOperand]


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with ``op`` in =, <>, <, <=, >, >=."""

    left: Operand
    operator: str
    right: Operand
    position: Optional[SourcePosition] = _position_field()


@dataclass(frozen=True)
class LabelTest:
    """``x IS Label`` / ``Label(x)`` style label predicate (``x:Label`` inline)."""

    variable: str
    label: str
    position: Optional[SourcePosition] = _position_field()


@dataclass(frozen=True)
class BooleanExpression:
    """AND/OR/NOT combination of conditions."""

    operator: str  # "AND", "OR", "NOT"
    operands: Tuple["ConditionExpr", ...]


ConditionExpr = Union[Comparison, LabelTest, BooleanExpression]


# --------------------------------------------------------------------------- #
# GRAPH_TABLE queries
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class OutputColumn:
    """``x.key [AS alias]`` or ``x [AS alias]`` in COLUMNS/RETURN."""

    variable: str
    key: Optional[str] = None
    alias: Optional[str] = None
    position: Optional[SourcePosition] = _position_field()

    @property
    def name(self) -> str:
        if self.alias:
            return self.alias
        return f"{self.variable}.{self.key}" if self.key else self.variable


@dataclass(frozen=True)
class GraphTableQuery:
    """``SELECT ... FROM GRAPH_TABLE(graph MATCH ... WHERE ... COLUMNS (...))``."""

    graph_name: str
    elements: Tuple[PathElement, ...]
    condition: Optional[ConditionExpr]
    columns: Tuple[OutputColumn, ...]
    distinct: bool = False
    #: Projection names of the outer ``SELECT`` list (empty for ``SELECT *``).
    #: Carried for analysis only (arity check against COLUMNS), so excluded
    #: from equality/hash like positions: the compiler ignores the outer list.
    select_items: Tuple[str, ...] = field(default=(), compare=False, repr=False)
    select_star: bool = field(default=True, compare=False, repr=False)
    position: Optional[SourcePosition] = _position_field()
