"""Tokenizer for the SQL/PGQ surface syntax subset.

The lexer covers the statements used in the paper (``CREATE PROPERTY
GRAPH`` view definitions and ``SELECT ... FROM GRAPH_TABLE(...)`` queries)
plus the pattern punctuation of MATCH clauses: ``-[t:Label]->``, ``<-[t]-``,
quantifiers ``*``, ``+`` and ``{n,m}``, and ordinary SQL punctuation.
Keywords are case-insensitive; identifiers keep their original spelling.

The ``:`` symbol is position-disambiguated by the parser: inside a pattern
element it separates a variable from its labels (``(x:Account)``), while
in a WHERE operand position ``: name`` is a parameter placeholder
(``t.amount > :minimum``) bound at execution time by the prepared
statement API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ParseError

#: Keywords recognized by the parser (upper-cased for comparison).
KEYWORDS = {
    "CREATE", "PROPERTY", "GRAPH", "NODES", "VERTEX", "EDGES", "EDGE", "TABLE", "TABLES",
    "KEY", "LABEL", "LABELS", "PROPERTIES", "SOURCE", "TARGET", "REFERENCES",
    "SELECT", "DISTINCT", "FROM", "GRAPH_TABLE", "MATCH", "WHERE", "RETURN", "COLUMNS",
    "AS", "AND", "OR", "NOT", "ALL", "ARE",
}


@dataclass(frozen=True)
class Token:
    """A single token with its position for error reporting."""

    kind: str          # KEYWORD, IDENT, NUMBER, STRING, SYMBOL, EOF
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.value.upper() in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == "SYMBOL" and self.value in symbols


_MULTI_CHAR_SYMBOLS = ("<>", "!=", ">=", "<=", "->", "<-", "]-", "-[")
_SINGLE_CHAR_SYMBOLS = set("()[]{},.;:*+=<>-/")


def source_excerpt(text: str, line: int, column: int) -> Optional[str]:
    """The source line at ``line`` with a caret under ``column``.

    Returns ``None`` when the position falls outside ``text`` (stale
    positions must never crash error rendering).
    """
    lines = text.splitlines()
    if not 1 <= line <= len(lines):
        return None
    excerpt = lines[line - 1].replace("\t", " ")
    caret = " " * max(column - 1, 0) + "^"
    return f"{excerpt}\n{caret}"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`ParseError` on unknown characters."""
    tokens: List[Token] = []
    line, column = 1, 1
    index = 0
    length = len(text)

    def error(message: str) -> ParseError:
        return ParseError(message, line=line, column=column)

    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char.isspace():
            index += 1
            column += 1
            continue
        if text.startswith("--", index):
            # SQL line comment.
            end = text.find("\n", index)
            index = length if end == -1 else end
            continue
        if char == "'" or char == '"':
            quote = char
            end = index + 1
            while end < length and text[end] != quote:
                end += 1
            if end >= length:
                raise error("unterminated string literal")
            value = text[index + 1 : end]
            tokens.append(Token("STRING", value, line, column))
            column += end - index + 1
            index = end + 1
            continue
        if char.isdigit():
            end = index
            while end < length and (text[end].isdigit() or text[end] == "."):
                end += 1
            value = text[index:end]
            tokens.append(Token("NUMBER", value, line, column))
            column += end - index
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            value = text[index:end]
            # Keywords keep their original spelling so they can double as
            # identifiers (e.g. an output alias named "target").
            if value.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", value, line, column))
            else:
                tokens.append(Token("IDENT", value, line, column))
            column += end - index
            index = end
            continue
        matched = False
        for symbol in _MULTI_CHAR_SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(Token("SYMBOL", symbol, line, column))
                index += len(symbol)
                column += len(symbol)
                matched = True
                break
        if matched:
            continue
        if char in _SINGLE_CHAR_SYMBOLS:
            tokens.append(Token("SYMBOL", char, line, column))
            index += 1
            column += 1
            continue
        raise error(f"unexpected character {char!r}")
    tokens.append(Token("EOF", "", line, column))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers.

    When the originating ``source`` text is supplied, parse errors carry a
    one-line excerpt with a caret under the offending token.
    """

    def __init__(self, tokens: List[Token], source: Optional[str] = None):
        self._tokens = tokens
        self._position = 0
        self._source = source

    def peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self._position += 1
        return token

    def at_end(self) -> bool:
        return self.peek().kind == "EOF"

    def error(self, message: str) -> ParseError:
        token = self.peek()
        found = "end of input" if token.kind == "EOF" else f"{token.kind} {token.value!r}"
        detail = f"{message} (found {found})"
        if self._source is not None:
            snippet = source_excerpt(self._source, token.line, token.column)
            if snippet is not None:
                detail = f"{detail}\n{snippet}"
        return ParseError(detail, line=token.line, column=token.column)

    def expect_keyword(self, *names: str) -> Token:
        token = self.peek()
        if not token.is_keyword(*names):
            raise self.error(f"expected keyword {' or '.join(names)}")
        return self.advance()

    def expect_symbol(self, *symbols: str) -> Token:
        token = self.peek()
        if not token.is_symbol(*symbols):
            raise self.error(f"expected {' or '.join(symbols)}")
        return self.advance()

    def expect_identifier(self) -> Token:
        token = self.peek()
        if token.kind not in ("IDENT", "KEYWORD"):
            raise self.error("expected an identifier")
        return self.advance()

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.peek().is_keyword(*names):
            return self.advance()
        return None

    def accept_symbol(self, *symbols: str) -> Optional[Token]:
        if self.peek().is_symbol(*symbols):
            return self.advance()
        return None
