"""Compilation of GRAPH_TABLE queries onto the formal PGQ fragments.

A parsed :class:`~repro.sqlpgq.ast.GraphTableQuery` is lowered to a
:class:`~repro.pgq.queries.GraphPattern` whose six view subqueries come
from the catalog entry named in the query.  The MATCH pattern becomes a
pattern of Figure 1; inline labels and WHERE conjuncts become filter
conditions.

Quantified edges (``-[t]->+`` etc.) compile to a repetition whose body is
``edge node`` -- exactly the shape of Example 2.1's formal pattern
``((x) -t->)^{1..inf} (y)``.  Because repetition erases bindings
(``fv(psi^{n..m}) = {}``), a WHERE conjunct that mentions only variables
bound *inside* a quantified edge is pushed into that repetition's body,
which matches the intended per-step reading of the paper's example (every
transfer on the path has amount > 100); conjuncts over top-level variables
stay at the top level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.planner.logical import LogicalPlan

from repro.errors import QueryError
from repro.patterns.ast import (
    INFINITY,
    Concatenation,
    Filter,
    NodePattern,
    EdgePattern,
    OutputPattern,
    Pattern,
    PropertyRef,
    Repetition,
)
from repro.patterns.conditions import (
    AndCondition,
    HasLabel,
    NotCondition,
    OrCondition,
    PatternCondition,
    PropertyCompare,
    PropertyComparesProperty,
    PropertyEquals,
)
from repro.parameters import Parameter
from repro.pgq.queries import GraphPattern, Query
from repro.sqlpgq.ast import (
    BooleanExpression,
    Comparison,
    ConditionExpr,
    EdgeElement,
    GraphTableQuery,
    LabelTest,
    LiteralOperand,
    NodeElement,
    OutputColumn,
    ParameterOperand,
    PropertyOperand,
)
from repro.observability.tracing import trace_span
from repro.sqlpgq.catalog import GraphCatalog


def compile_query(query: GraphTableQuery, catalog: GraphCatalog) -> Query:
    """Compile a parsed GRAPH_TABLE query to a PGQ query."""
    with trace_span("compile", graph=query.graph_name):
        definition = catalog.get(query.graph_name)
        compiler = _QueryCompiler(query)
        output = compiler.build_output_pattern()
        return GraphPattern(output, definition.view_subqueries())


@dataclass(frozen=True)
class CompiledPlan:
    """A GRAPH_TABLE query lowered all the way into the planner IR.

    ``query`` is the formal PGQ query (the semantics), ``logical`` the
    direct lowering of its MATCH pattern, and ``optimized`` the plan after
    the rewrite rules — the plan the planned engine executes (and the one
    ``PGQSession.explain`` prints).
    """

    query: GraphPattern
    logical: "LogicalPlan"
    optimized: "LogicalPlan"

    def describe(self) -> str:
        from repro.planner.logical import describe

        return describe(self.optimized)


def compile_to_plan(query: GraphTableQuery, catalog: GraphCatalog) -> CompiledPlan:
    """Compile a parsed GRAPH_TABLE query into the planner's logical IR.

    This is the planned engine's front door: the surface query becomes a
    :class:`~repro.pgq.queries.GraphPattern` (for the view subqueries) plus
    an optimized logical plan for its MATCH pattern, rather than leaving
    plan construction to evaluation time.
    """
    from repro.planner.logical import build_logical_plan
    from repro.planner.rules import optimize

    pgq_query = compile_query(query, catalog)
    output = pgq_query.output
    logical = build_logical_plan(output.pattern)
    optimized = optimize(logical, frozenset(output.output_variables()))
    return CompiledPlan(pgq_query, logical, optimized)


class _QueryCompiler:
    """Stateful lowering of one GRAPH_TABLE query."""

    def __init__(self, query: GraphTableQuery):
        self.query = query
        self.top_level_variables: Set[str] = set()
        self.quantified_variables: Dict[str, int] = {}  # variable -> segment index
        self._anonymous_counter = 0

    def _fresh(self, prefix: str) -> str:
        """Deterministic name for an anonymous pattern element.

        A SQL identifier cannot start with a digit, so the leading ``0``
        makes collision with a user variable impossible (while keeping the
        name a valid suffix for the SQLite backend's ``v_<name>`` column
        aliases); numbering restarts per query so re-parsing the same
        statement yields a *structurally identical* pattern.  That
        determinism is what lets the plan cache and the executor's memoized
        tables serve repeated SQL text — a process-wide gensym (the old
        behavior) made every parse a cache miss.
        """
        name = f"0{prefix}{self._anonymous_counter}"
        self._anonymous_counter += 1
        return name

    # ------------------------------------------------------------------ #
    def build_output_pattern(self) -> OutputPattern:
        segments = self._segment_elements()
        where_parts = _split_conjuncts(self.query.condition)
        top_conditions, per_segment = self._assign_conditions(where_parts, segments)
        pattern = self._compile_segments(segments, per_segment)
        if top_conditions:
            pattern = Filter(pattern, _conjoin(top_conditions))
        items = tuple(self._output_item(column) for column in self.query.columns)
        return OutputPattern(pattern, items)

    # -- segmentation ------------------------------------------------------
    def _segment_elements(self) -> List[Tuple[str, object]]:
        """Split the element list into plain elements and quantified segments.

        Returns a list of ("node", NodeElement), ("edge", EdgeElement) and
        ("quantified", EdgeElement) entries.  A quantified edge becomes a
        repetition whose body is ``edge node`` (the shape of Example 2.1's
        formal pattern); the node element *after* the quantified edge stays a
        top-level element, so it remains free and can be output.
        """
        elements = list(self.query.elements)
        if not elements or not isinstance(elements[0], NodeElement):
            raise QueryError("a MATCH pattern must start with a node element")
        segments: List[Tuple[str, object]] = [("node", elements[0])]
        self._note_node(elements[0], quantified=False, segment=None)
        index = 1
        segment_counter = 0
        while index < len(elements):
            edge = elements[index]
            node = elements[index + 1] if index + 1 < len(elements) else None
            if not isinstance(edge, EdgeElement) or not isinstance(node, NodeElement):
                raise QueryError("MATCH elements must alternate nodes and edges")
            if edge.quantifier is not None:
                segment_counter += 1
                segments.append(("quantified", edge))
                self._note_edge(edge, quantified=True, segment=segment_counter)
                segments.append(("node", node))
                self._note_node(node, quantified=False, segment=None)
            else:
                segments.append(("edge", edge))
                segments.append(("node", node))
                self._note_edge(edge, quantified=False, segment=None)
                self._note_node(node, quantified=False, segment=None)
            index += 2
        return segments

    def _note_node(self, element: NodeElement, *, quantified: bool, segment: Optional[int]) -> None:
        if element.variable is None:
            return
        if quantified:
            self.quantified_variables[element.variable] = segment or 0
        else:
            self.top_level_variables.add(element.variable)

    def _note_edge(self, element: EdgeElement, *, quantified: bool, segment: Optional[int]) -> None:
        if element.variable is None:
            return
        if quantified:
            self.quantified_variables[element.variable] = segment or 0
        else:
            self.top_level_variables.add(element.variable)

    # -- condition placement -------------------------------------------------
    def _assign_conditions(
        self, conjuncts: Sequence[ConditionExpr], segments: Sequence[Tuple[str, object]]
    ) -> Tuple[List[PatternCondition], Dict[int, List[PatternCondition]]]:
        top: List[PatternCondition] = []
        per_segment: Dict[int, List[PatternCondition]] = {}
        for conjunct in conjuncts:
            condition = _compile_condition(conjunct)
            variables = condition.variables()
            segment_ids = {
                self.quantified_variables[v] for v in variables if v in self.quantified_variables
            }
            unknown = {
                v
                for v in variables
                if v not in self.quantified_variables and v not in self.top_level_variables
            }
            if unknown:
                raise QueryError(f"WHERE clause mentions unbound variables {sorted(unknown)}")
            if not segment_ids:
                top.append(condition)
            elif len(segment_ids) == 1 and all(v in self.quantified_variables for v in variables):
                per_segment.setdefault(segment_ids.pop(), []).append(condition)
            else:
                raise QueryError(
                    "a WHERE conjunct may not mix variables bound inside a quantified path "
                    "segment with other variables (repetition erases its bindings, Figure 1)"
                )
        return top, per_segment

    # -- pattern assembly ------------------------------------------------------
    def _compile_segments(
        self,
        segments: Sequence[Tuple[str, object]],
        per_segment: Dict[int, List[PatternCondition]],
    ) -> Pattern:
        pattern: Optional[Pattern] = None
        inline_conditions: List[PatternCondition] = []
        segment_counter = 0

        def extend(next_pattern: Pattern) -> None:
            nonlocal pattern
            pattern = next_pattern if pattern is None else Concatenation(pattern, next_pattern)

        for kind, payload in segments:
            if kind == "node":
                element = payload
                variable = element.variable or self._fresh("n")
                extend(NodePattern(variable))
                for label in element.labels:
                    inline_conditions.append(HasLabel(variable, label))
            elif kind == "edge":
                element = payload
                variable = element.variable or self._fresh("e")
                extend(EdgePattern(variable, forward=element.forward))
                for label in element.labels:
                    inline_conditions.append(HasLabel(variable, label))
            else:  # quantified segment
                segment_counter += 1
                edge_element = payload
                edge_variable = edge_element.variable or self._fresh("e")
                inner_node = self._fresh("n")
                body: Pattern = Concatenation(
                    EdgePattern(edge_variable, forward=edge_element.forward),
                    NodePattern(inner_node),
                )
                conditions = [HasLabel(edge_variable, label) for label in edge_element.labels]
                conditions.extend(per_segment.get(segment_counter, []))
                if conditions:
                    body = Filter(body, _conjoin(conditions))
                quantifier = edge_element.quantifier
                upper = INFINITY if quantifier.upper is None else quantifier.upper
                extend(Repetition(body, quantifier.lower, upper))
        assert pattern is not None
        if inline_conditions:
            pattern = Filter(pattern, _conjoin(inline_conditions))
        return pattern

    def _output_item(self, column: OutputColumn) -> Union[str, PropertyRef]:
        if column.variable in self.quantified_variables:
            raise QueryError(
                f"output column {column.name!r} refers to {column.variable!r}, which is bound "
                "inside a quantified path segment and therefore not free (Figure 1)"
            )
        if column.variable not in self.top_level_variables:
            raise QueryError(f"output column refers to unknown variable {column.variable!r}")
        if column.key is None:
            return column.variable
        return PropertyRef(column.variable, column.key)


# --------------------------------------------------------------------------- #
# Condition lowering
# --------------------------------------------------------------------------- #
def _split_conjuncts(condition: Optional[ConditionExpr]) -> List[ConditionExpr]:
    if condition is None:
        return []
    if isinstance(condition, BooleanExpression) and condition.operator == "AND":
        parts: List[ConditionExpr] = []
        for operand in condition.operands:
            parts.extend(_split_conjuncts(operand))
        return parts
    return [condition]


def _conjoin(conditions: Sequence[PatternCondition]) -> PatternCondition:
    result = conditions[0]
    for condition in conditions[1:]:
        result = AndCondition(result, condition)
    return result


def _compile_condition(condition: ConditionExpr) -> PatternCondition:
    if isinstance(condition, Comparison):
        return _compile_comparison(condition)
    if isinstance(condition, LabelTest):
        return HasLabel(condition.variable, condition.label)
    if isinstance(condition, BooleanExpression):
        operands = [_compile_condition(operand) for operand in condition.operands]
        if condition.operator == "NOT":
            return NotCondition(operands[0])
        result = operands[0]
        for operand in operands[1:]:
            result = (
                AndCondition(result, operand)
                if condition.operator == "AND"
                else OrCondition(result, operand)
            )
        return result
    raise QueryError(f"unsupported WHERE condition {condition!r}")


def _operand_value(operand: Union[LiteralOperand, ParameterOperand]):
    """A comparison constant: the literal's value, or a parameter slot
    bound at execution time (prepared statements)."""
    if isinstance(operand, ParameterOperand):
        return Parameter(operand.name)
    return operand.value


def _compile_comparison(comparison: Comparison) -> PatternCondition:
    left, right = comparison.left, comparison.right
    operator = comparison.operator
    if isinstance(left, PropertyOperand) and isinstance(right, PropertyOperand):
        if operator == "=":
            return PropertyEquals(left.variable, left.key, right.variable, right.key)
        return PropertyComparesProperty(left.variable, left.key, operator, right.variable, right.key)
    if isinstance(left, PropertyOperand) and isinstance(right, (LiteralOperand, ParameterOperand)):
        return PropertyCompare(left.variable, left.key, operator, _operand_value(right))
    if isinstance(left, (LiteralOperand, ParameterOperand)) and isinstance(right, PropertyOperand):
        flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}[operator]
        return PropertyCompare(right.variable, right.key, flipped, _operand_value(left))
    raise QueryError(
        "comparisons between two literals (or two parameters) are not supported in WHERE"
    )
