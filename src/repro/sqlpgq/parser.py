"""Recursive-descent parser for the SQL/PGQ surface subset.

Grammar (informal)::

    create_graph  := CREATE PROPERTY GRAPH name "(" table_clause ("," table_clause)* ")" [";"]
    table_clause  := (NODES|VERTEX) TABLE[S] node_table
                   | (EDGES|EDGE) TABLE[S] edge_table
    node_table    := name KEY "(" columns ")" [LABEL|LABELS names] [PROPERTIES "(" columns ")"]
    edge_table    := name KEY "(" columns ")"
                     SOURCE KEY [ "(" ] columns [ ")" ] REFERENCES name
                     TARGET KEY [ "(" ] columns [ ")" ] REFERENCES name
                     [LABEL|LABELS names] [PROPERTIES "(" columns ")"]

    query         := SELECT [DISTINCT] ("*" | columns) FROM GRAPH_TABLE "("
                        name MATCH path [WHERE condition] (COLUMNS|RETURN) "(" output ")"
                     ")" [";"]
    path          := node_elem (edge_elem node_elem)*
    node_elem     := "(" [var] [":" label] ")"
    edge_elem     := "-" "[" [var] [":" label] "]" "->" [quant]
                   | "<-" "[" [var] [":" label] "]" "-" [quant]
                   | "->" [quant]
    quant         := "*" | "+" | "{" n "," m "}"
    condition     := disjunction of conjunctions of (comparison | NOT ...)
    comparison    := operand (= | <> | != | < | <= | > | >=) operand
    operand       := var "." key | number | string | ":" name

``:name`` is a parameter placeholder: it stands where a literal may and
is bound at execution time (``session.prepare(...).execute(name=...)``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.sqlpgq.ast import (
    BooleanExpression,
    Comparison,
    ConditionExpr,
    CreatePropertyGraph,
    EdgeElement,
    EdgeTableSpec,
    GraphTableQuery,
    LiteralOperand,
    NodeElement,
    NodeTableSpec,
    Operand,
    OutputColumn,
    ParameterOperand,
    PathElement,
    PropertyOperand,
    Quantifier,
)
from repro.observability.tracing import trace_span
from repro.sqlpgq.lexer import TokenStream, tokenize


def parse_statement(text: str) -> Union[CreatePropertyGraph, GraphTableQuery]:
    """Parse one SQL/PGQ statement (DDL or query)."""
    with trace_span("parse", chars=len(text)):
        stream = TokenStream(tokenize(text), source=text)
        if stream.peek().is_keyword("CREATE"):
            statement = _parse_create_graph(stream)
        elif stream.peek().is_keyword("SELECT"):
            statement = _parse_query(stream)
        else:
            raise stream.error("expected CREATE PROPERTY GRAPH or SELECT")
        stream.accept_symbol(";")
        if not stream.at_end():
            raise stream.error("unexpected trailing input")
    return statement


def parse_create_property_graph(text: str) -> CreatePropertyGraph:
    """Parse a ``CREATE PROPERTY GRAPH`` statement."""
    statement = parse_statement(text)
    if not isinstance(statement, CreatePropertyGraph):
        line, column = statement.position or (1, 1)
        raise ParseError(
            "expected a CREATE PROPERTY GRAPH statement, got a query",
            line=line,
            column=column,
        )
    return statement


def parse_graph_query(text: str) -> GraphTableQuery:
    """Parse a ``SELECT ... FROM GRAPH_TABLE(...)`` statement."""
    statement = parse_statement(text)
    if not isinstance(statement, GraphTableQuery):
        line, column = statement.position or (1, 1)
        raise ParseError(
            "expected a SELECT ... FROM GRAPH_TABLE(...) statement, got DDL",
            line=line,
            column=column,
        )
    return statement


# --------------------------------------------------------------------------- #
# DDL
# --------------------------------------------------------------------------- #
def _parse_create_graph(stream: TokenStream) -> CreatePropertyGraph:
    create = stream.expect_keyword("CREATE")
    stream.expect_keyword("PROPERTY")
    stream.expect_keyword("GRAPH")
    name_token = stream.expect_identifier()
    name = name_token.value
    stream.expect_symbol("(")
    node_tables: List[NodeTableSpec] = []
    edge_tables: List[EdgeTableSpec] = []
    while True:
        if stream.accept_keyword("NODES", "VERTEX"):
            stream.expect_keyword("TABLE", "TABLES")
            node_tables.append(_parse_node_table(stream))
            # Additional node tables separated by commas without repeating
            # the NODES TABLE keyword; a comma before a clause keyword
            # instead separates table clauses of the CREATE statement.
            while stream.accept_symbol(","):
                if stream.peek().is_keyword("NODES", "VERTEX", "EDGES", "EDGE"):
                    break
                node_tables.append(_parse_node_table(stream))
        elif stream.accept_keyword("EDGES", "EDGE"):
            stream.expect_keyword("TABLE", "TABLES")
            edge_tables.append(_parse_edge_table(stream))
            while stream.accept_symbol(","):
                if stream.peek().is_keyword("NODES", "VERTEX", "EDGES", "EDGE"):
                    break
                edge_tables.append(_parse_edge_table(stream))
        else:
            break
        if stream.peek().is_symbol(")"):
            break
    stream.expect_symbol(")")
    if not node_tables:
        raise ParseError(
            f"property graph {name!r} declares no node tables",
            line=name_token.line,
            column=name_token.column,
        )
    return CreatePropertyGraph(
        name,
        tuple(node_tables),
        tuple(edge_tables),
        position=(create.line, create.column),
    )


def _parse_name_list(stream: TokenStream) -> Tuple[str, ...]:
    names = [stream.expect_identifier().value]
    # A comma followed by a clause keyword (NODES/EDGES/...) separates table
    # clauses of the surrounding CREATE statement, not list entries.
    while stream.peek().is_symbol(",") and not stream.peek(1).is_keyword(
        "NODES", "VERTEX", "EDGES", "EDGE"
    ):
        stream.advance()
        names.append(stream.expect_identifier().value)
    return tuple(names)


def _parse_column_list(stream: TokenStream) -> Tuple[str, ...]:
    stream.expect_symbol("(")
    columns = _parse_name_list(stream)
    stream.expect_symbol(")")
    return columns


def _parse_optional_key_columns(stream: TokenStream) -> Tuple[str, ...]:
    if stream.peek().is_symbol("("):
        return _parse_column_list(stream)
    return (stream.expect_identifier().value,)


def _parse_labels_and_properties(stream: TokenStream) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    labels: Tuple[str, ...] = ()
    properties: Tuple[str, ...] = ()
    while True:
        if stream.accept_keyword("LABEL", "LABELS"):
            labels = labels + _parse_name_list(stream)
        elif stream.accept_keyword("PROPERTIES"):
            properties = properties + _parse_column_list(stream)
        else:
            break
    return labels, properties


def _parse_node_table(stream: TokenStream) -> NodeTableSpec:
    table_token = stream.expect_identifier()
    stream.expect_keyword("KEY")
    key_columns = _parse_column_list(stream)
    labels, properties = _parse_labels_and_properties(stream)
    return NodeTableSpec(
        table_token.value, key_columns, labels, properties,
        position=(table_token.line, table_token.column),
    )


def _parse_edge_table(stream: TokenStream) -> EdgeTableSpec:
    table_token = stream.expect_identifier()
    stream.expect_keyword("KEY")
    key_columns = _parse_column_list(stream)
    stream.expect_keyword("SOURCE")
    stream.expect_keyword("KEY")
    source_columns = _parse_optional_key_columns(stream)
    stream.expect_keyword("REFERENCES")
    source_table = stream.expect_identifier().value
    stream.expect_keyword("TARGET")
    stream.expect_keyword("KEY")
    target_columns = _parse_optional_key_columns(stream)
    stream.expect_keyword("REFERENCES")
    target_table = stream.expect_identifier().value
    labels, properties = _parse_labels_and_properties(stream)
    return EdgeTableSpec(
        table_token.value, key_columns, source_columns, source_table,
        target_columns, target_table, labels, properties,
        position=(table_token.line, table_token.column),
    )


# --------------------------------------------------------------------------- #
# Queries
# --------------------------------------------------------------------------- #
def _parse_query(stream: TokenStream) -> GraphTableQuery:
    select = stream.expect_keyword("SELECT")
    distinct = stream.accept_keyword("DISTINCT") is not None
    select_star = True
    select_items: Tuple[str, ...] = ()
    if not stream.accept_symbol("*"):
        # A projection list in the outer SELECT is recorded for the semantic
        # analyzer (which checks it against the COLUMNS clause) but does not
        # affect compilation: the inner COLUMNS clause fixes the output.
        select_star = False
        select_items = _parse_select_list(stream)
    stream.expect_keyword("FROM")
    stream.expect_keyword("GRAPH_TABLE")
    stream.expect_symbol("(")
    graph_token = stream.expect_identifier()
    stream.expect_keyword("MATCH")
    elements = _parse_path(stream)
    condition: Optional[ConditionExpr] = None
    if stream.accept_keyword("WHERE"):
        condition = _parse_condition(stream)
    stream.expect_keyword("COLUMNS", "RETURN")
    stream.expect_symbol("(")
    columns = _parse_output_columns(stream)
    stream.expect_symbol(")")
    stream.expect_symbol(")")
    return GraphTableQuery(
        graph_token.value,
        tuple(elements),
        condition,
        tuple(columns),
        distinct,
        select_items=select_items,
        select_star=select_star,
        position=(select.line, select.column),
    )


def _parse_select_list(stream: TokenStream) -> Tuple[str, ...]:
    """The outer SELECT projection: ``name`` or ``var.key``, no aliases."""
    items = [_parse_select_item(stream)]
    while stream.peek().is_symbol(",") and not stream.peek(1).is_keyword(
        "NODES", "VERTEX", "EDGES", "EDGE"
    ):
        stream.advance()
        items.append(_parse_select_item(stream))
    return tuple(items)


def _parse_select_item(stream: TokenStream) -> str:
    name = stream.expect_identifier().value
    if stream.accept_symbol("."):
        name = f"{name}.{stream.expect_identifier().value}"
    return name


def _parse_path(stream: TokenStream) -> List[PathElement]:
    elements: List[PathElement] = [_parse_node_element(stream)]
    while stream.peek().is_symbol("-", "-[", "<-", "->"):
        elements.append(_parse_edge_element(stream))
        elements.append(_parse_node_element(stream))
    return elements


def _parse_node_element(stream: TokenStream) -> NodeElement:
    opening = stream.expect_symbol("(")
    variable: Optional[str] = None
    labels: Tuple[str, ...] = ()
    if stream.peek().kind == "IDENT":
        variable = stream.advance().value
    if stream.accept_symbol(":"):
        labels = (stream.expect_identifier().value,)
        while stream.accept_symbol(":"):
            labels = labels + (stream.expect_identifier().value,)
    stream.expect_symbol(")")
    return NodeElement(variable, labels, position=(opening.line, opening.column))


def _parse_quantifier(stream: TokenStream) -> Optional[Quantifier]:
    if stream.accept_symbol("*"):
        return Quantifier(0, None)
    if stream.accept_symbol("+"):
        return Quantifier(1, None)
    if stream.accept_symbol("{"):
        lower = int(stream.advance().value)
        upper: Optional[int] = lower
        if stream.accept_symbol(","):
            if stream.peek().kind == "NUMBER":
                upper = int(stream.advance().value)
            else:
                upper = None
        stream.expect_symbol("}")
        return Quantifier(lower, upper)
    return None


def _parse_edge_body(stream: TokenStream) -> Tuple[Optional[str], Tuple[str, ...]]:
    """Parse ``[t:Label]``-style edge descriptors (the brackets' inside)."""
    variable: Optional[str] = None
    labels: Tuple[str, ...] = ()
    if stream.peek().kind == "IDENT":
        variable = stream.advance().value
    if stream.accept_symbol(":"):
        labels = (stream.expect_identifier().value,)
        while stream.accept_symbol(":"):
            labels = labels + (stream.expect_identifier().value,)
    return variable, labels


def _parse_edge_element(stream: TokenStream) -> EdgeElement:
    start = stream.peek()
    position = (start.line, start.column)
    # Backward edge: <-[t]- or <- ...
    if stream.accept_symbol("<-"):
        variable: Optional[str] = None
        labels: Tuple[str, ...] = ()
        if stream.accept_symbol("["):
            variable, labels = _parse_edge_body(stream)
            if not stream.accept_symbol("]-"):
                stream.expect_symbol("]")
                stream.expect_symbol("-")
        else:
            stream.accept_symbol("-")
        quantifier = _parse_quantifier(stream)
        return EdgeElement(
            variable, labels, forward=False, quantifier=quantifier, position=position
        )
    # Forward edge: -[t]-> , -> , or - [t] - > spelled with separate symbols.
    if stream.accept_symbol("->"):
        quantifier = _parse_quantifier(stream)
        return EdgeElement(None, (), forward=True, quantifier=quantifier, position=position)
    stream.expect_symbol("-", "-[")
    variable = None
    labels = ()
    if stream.peek().is_symbol("["):
        stream.advance()
        variable, labels = _parse_edge_body(stream)
        stream.expect_symbol("]")
    elif not stream.peek().is_symbol("-", "->", ">"):
        variable, labels = _parse_edge_body(stream)
    # Closing arrow: "->", or "-" then ">", or "]-" then ">".
    if not stream.accept_symbol("->"):
        stream.expect_symbol("-", "]-")
        stream.expect_symbol(">")
    quantifier = _parse_quantifier(stream)
    return EdgeElement(
        variable, labels, forward=True, quantifier=quantifier, position=position
    )


def _parse_output_columns(stream: TokenStream) -> List[OutputColumn]:
    columns = [_parse_output_column(stream)]
    while stream.accept_symbol(","):
        columns.append(_parse_output_column(stream))
    return columns


def _parse_output_column(stream: TokenStream) -> OutputColumn:
    variable_token = stream.expect_identifier()
    key: Optional[str] = None
    alias: Optional[str] = None
    if stream.accept_symbol("."):
        key = stream.expect_identifier().value
    if stream.accept_keyword("AS"):
        alias = stream.expect_identifier().value
    return OutputColumn(
        variable_token.value, key, alias,
        position=(variable_token.line, variable_token.column),
    )


# --------------------------------------------------------------------------- #
# Conditions
# --------------------------------------------------------------------------- #
def _parse_condition(stream: TokenStream) -> ConditionExpr:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> ConditionExpr:
    left = _parse_and(stream)
    operands = [left]
    while stream.accept_keyword("OR"):
        operands.append(_parse_and(stream))
    if len(operands) == 1:
        return left
    return BooleanExpression("OR", tuple(operands))


def _parse_and(stream: TokenStream) -> ConditionExpr:
    left = _parse_not(stream)
    operands = [left]
    while stream.accept_keyword("AND"):
        operands.append(_parse_not(stream))
    if len(operands) == 1:
        return left
    return BooleanExpression("AND", tuple(operands))


def _parse_not(stream: TokenStream) -> ConditionExpr:
    if stream.accept_keyword("NOT"):
        return BooleanExpression("NOT", (_parse_not(stream),))
    if stream.peek().is_symbol("("):
        stream.expect_symbol("(")
        inner = _parse_condition(stream)
        stream.expect_symbol(")")
        return inner
    return _parse_comparison(stream)


def _parse_operand(stream: TokenStream) -> Operand:
    token = stream.peek()
    position = (token.line, token.column)
    if token.kind == "NUMBER":
        stream.advance()
        value: object = float(token.value) if "." in token.value else int(token.value)
        return LiteralOperand(value, position=position)
    if token.kind == "STRING":
        stream.advance()
        return LiteralOperand(token.value, position=position)
    if token.is_symbol(":"):
        # A parameter placeholder ``:name`` stands wherever a literal may.
        stream.advance()
        return ParameterOperand(stream.expect_identifier().value, position=position)
    variable = stream.expect_identifier().value
    stream.expect_symbol(".")
    key = stream.expect_identifier().value
    return PropertyOperand(variable, key, position=position)


def _parse_comparison(stream: TokenStream) -> ConditionExpr:
    start = stream.peek()
    left = _parse_operand(stream)
    token = stream.peek()
    operator: str
    if token.is_symbol("=", "<", ">", "<=", ">=", "<>", "!="):
        stream.advance()
        operator = token.value
        # Allow ">=" / "<=" spelled as two tokens.
        if operator in ("<", ">") and stream.peek().is_symbol("="):
            stream.advance()
            operator += "="
    else:
        raise stream.error("expected a comparison operator")
    if operator == "<>":
        operator = "!="
    right = _parse_operand(stream)
    return Comparison(left, operator, right, position=(start.line, start.column))
